"""The differential harness: symbolic engines vs the explicit oracle.

One *trial* (:func:`run_trial`) runs, from a single seed:

1. a BDD-operator fuzz round — a random operation DAG over 4-5
   variables, every node verified exhaustively against its
   :class:`~repro.oracle.truthtable.TruthTable` mask,
2. a generated model cross-check — symbolic reachability (state sets,
   counts, BFS ring structure), fair-CTL sat sets state-by-state (plus
   the ``AG`` invariant fast path verdict), and language containment
   verdicts with counterexample-lasso validation, each compared against
   the explicit engines of :mod:`repro.oracle`.

Any mismatch is reported as a :class:`Divergence`.  :func:`run_sweep`
runs many trials, greedily shrinks failing cases to minimal repros, and
writes them into a corpus directory that
:func:`replay_corpus_entry` (and ``tests/test_differential.py``) replay.
Timing flows through :class:`repro.perf.EngineStats` phases
(``fuzz.gen`` / ``fuzz.bddops`` / ``fuzz.oracle`` / ``fuzz.reach`` /
``fuzz.mc`` / ``fuzz.lc``).
"""

from __future__ import annotations

import json
import random
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.bdd.manager import BDD
from repro.ctl.modelcheck import ModelChecker
from repro.debug.lcdebug import lc_counterexample
from repro.lc.containment import check_containment
from repro.network.fsm import SymbolicFsm
from repro.oracle.containment import (
    check_containment_explicit,
    system_fairness_from_descs,
    validate_lc_trace,
)
from repro.oracle.ctl import ExplicitModelChecker
from repro.oracle.explicit import ExplicitKripke, State
from repro.oracle.fuzz import (
    automaton_from_desc,
    case_from_payload,
    case_to_payload,
    fairness_spec_from_descs,
    format_ctl,
    gen_case,
    shrink_case,
)
from repro.oracle.truthtable import TruthTable
from repro.perf import EngineStats

ORACLE_MAX_SPACE = 4096


@dataclass
class Divergence:
    """One disagreement between a symbolic engine and the oracle."""

    area: str  # bddops | reach | ctl | invariant | lc | trace | crash
    seed: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.area}] seed={self.seed}: {self.detail}"


@dataclass
class TrialReport:
    """Outcome of one seeded trial."""

    seed: int
    divergences: List[Divergence]
    seconds: float
    skipped: bool = False
    case: Optional[dict] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class SweepReport:
    """Outcome of a multi-trial sweep."""

    trials: int
    seed0: int
    reports: List[TrialReport] = field(default_factory=list)
    corpus_written: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def divergences(self) -> List[Divergence]:
        return [d for r in self.reports for d in r.divergences]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        n_div = len(self.divergences)
        failing = sum(1 for r in self.reports if not r.ok)
        lines = [
            f"fuzz sweep: {self.trials} trial(s) from seed {self.seed0}, "
            f"{self.seconds:.2f}s, "
            f"{n_div} divergence(s) in {failing} trial(s)"
        ]
        for d in self.divergences:
            lines.append(f"  {d}")
        for path in self.corpus_written:
            lines.append(f"  corpus repro written: {path}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# BDD-operator fuzzing against truth tables
# ----------------------------------------------------------------------


def bddops_trial(
    rng: random.Random,
    seed: int,
    auto_reorder: Optional[int] = None,
    batch_apply: Optional[bool] = None,
) -> List[Divergence]:
    """Grow a random operation DAG, verifying every node exhaustively.

    With ``auto_reorder`` the kernel's dynamic sifting is armed and a
    ``maybe_gc`` safe point (with the whole pool as roots) runs after
    every step, so reordering fires mid-trial and every node is
    re-verified against its truth table afterwards — proving in-place
    sifting never changes a function.
    """
    divergences: List[Divergence] = []
    n = rng.choice([4, 5])
    bdd = BDD(cache_limit=rng.choice([None, None, 512]),
              auto_reorder=auto_reorder, batch_apply=batch_apply)
    for j in range(n):
        bdd.add_var(f"v{j}")
    all_vars = list(range(n))
    pool: List[Tuple[int, TruthTable, str]] = [
        (bdd.false, TruthTable.false(n), "false"),
        (bdd.true, TruthTable.true(n), "true"),
    ]
    for j in range(n):
        pool.append((bdd.var(j), TruthTable.var(n, j), f"v{j}"))

    def verify(node: int, table: TruthTable, what: str) -> bool:
        for a in range(1 << n):
            assignment = {j: bool((a >> j) & 1) for j in all_vars}
            if bdd.eval(node, assignment) != table.eval(a):
                divergences.append(
                    Divergence(
                        "bddops",
                        seed,
                        f"{what}: node disagrees with truth table at "
                        f"assignment {a:0{n}b}",
                    )
                )
                return False
        if bdd.sat_count(node, all_vars) != table.count():
            divergences.append(
                Divergence("bddops", seed, f"{what}: sat_count mismatch")
            )
            return False
        if set(bdd.support(node)) != table.support():
            divergences.append(
                Divergence("bddops", seed, f"{what}: support mismatch")
            )
            return False
        return True

    def pick(k: int) -> List[Tuple[int, TruthTable, str]]:
        return [pool[rng.randrange(len(pool))] for _ in range(k)]

    steps = rng.randint(12, 24)
    for step in range(steps):
        op = rng.choice(
            ["not", "and", "or", "xor", "implies", "diff", "ite",
             "exist", "forall", "and_exists", "compose", "restrict"]
        )
        if op == "not":
            (f, tf, _), = pick(1)
            node, table = bdd.not_(f), ~tf
        elif op in ("and", "or", "xor", "implies", "diff"):
            (f, tf, _), (g, tg, _) = pick(2)
            node = getattr(bdd, {"and": "and_", "or": "or_"}.get(op, op))(f, g)
            table = {
                "and": tf & tg,
                "or": tf | tg,
                "xor": tf ^ tg,
                "implies": tf.implies(tg),
                "diff": tf.diff(tg),
            }[op]
        elif op == "ite":
            (f, tf, _), (g, tg, _), (h, th, _) = pick(3)
            node, table = bdd.ite(f, g, h), tf.ite(tg, th)
        elif op in ("exist", "forall"):
            (f, tf, _), = pick(1)
            qvars = rng.sample(all_vars, rng.randint(1, n - 1))
            if op == "exist":
                node, table = bdd.exist(qvars, f), tf.exist(qvars)
            else:
                node, table = bdd.forall(qvars, f), tf.forall(qvars)
        elif op == "and_exists":
            (f, tf, _), (g, tg, _) = pick(2)
            qvars = rng.sample(all_vars, rng.randint(1, n - 1))
            node, table = bdd.and_exists(f, g, qvars), tf.and_exists(tg, qvars)
        elif op == "compose":
            (f, tf, _), (g, tg, _) = pick(2)
            j = rng.choice(all_vars)
            node, table = bdd.compose(f, j, g), tf.compose(j, tg)
        else:  # restrict (cofactor by partial assignment)
            (f, tf, _), = pick(1)
            partial = {
                j: rng.random() < 0.5
                for j in rng.sample(all_vars, rng.randint(1, n - 1))
            }
            node, table = bdd.restrict(f, partial), tf.cofactor(partial)
        if not verify(node, table, f"step {step} ({op})"):
            return divergences
        pool.append((node, table, f"t{step}"))
        # Safe point: everything live is in the pool, so GC/reordering
        # here must preserve every pooled function verbatim.
        bdd.maybe_gc(extra_roots=[entry[0] for entry in pool])

    # Generalized cofactors agree on the care set; pick_cube satisfies.
    (f, tf, _), (c, tc, _) = pick(2)
    if c == bdd.false:  # cofactors by an empty care set are undefined
        c, tc = bdd.true, TruthTable.true(n)
    for name, result in (
        ("constrain", bdd.constrain(f, c)),
        ("restrict_dc", bdd.restrict_dc(f, c)),
    ):
        for a in range(1 << n):
            if not tc.eval(a):
                continue
            assignment = {j: bool((a >> j) & 1) for j in all_vars}
            if bdd.eval(result, assignment) != tf.eval(a):
                divergences.append(
                    Divergence(
                        "bddops", seed,
                        f"{name}: disagrees with argument on care set",
                    )
                )
                break
    (f, tf, _), = pick(1)
    cube = bdd.pick_cube(f, all_vars)
    if (cube is None) != (tf.mask == 0):
        divergences.append(
            Divergence("bddops", seed, "pick_cube emptiness mismatch")
        )
    elif cube is not None and not tf.eval_dict(
        {j: cube.get(j, False) for j in all_vars}
    ):
        divergences.append(
            Divergence("bddops", seed, "pick_cube returned a non-model")
        )
    return divergences


# ----------------------------------------------------------------------
# Model-level cross-checks
# ----------------------------------------------------------------------


def state_bits(fsm: SymbolicFsm, state: State, latch_names) -> Dict[int, bool]:
    """Boolean x-bit assignment of one explicit latch-value tuple.

    Matched by latch *name*: the encoder may order ``fsm.latches``
    differently from ``model.latches``.
    """
    valuation = dict(zip(latch_names, state))
    assignment: Dict[int, bool] = {}
    for latch in fsm.latches:
        code = latch.x.code_of(valuation[latch.name])
        for i, bit in enumerate(latch.x.bits):
            assignment[bit] = bool((code >> i) & 1)
    return assignment


def decode_states(fsm: SymbolicFsm, node: int, latch_names) -> FrozenSet[State]:
    return frozenset(
        tuple(d[name] for name in latch_names)
        for d in fsm.states_iter(node)
    )


def _fmt_states(states: Set[State], limit: int = 6) -> str:
    shown = sorted(states)[:limit]
    extra = "" if len(states) <= limit else f" (+{len(states) - limit} more)"
    return "{" + ", ".join("/".join(s) for s in shown) + "}" + extra


def run_case(
    case: dict,
    seed: int,
    stats: EngineStats,
    auto_reorder: Optional[int] = None,
    portfolio: Optional[int] = None,
    shared_shapes: bool = False,
    batch_apply: Optional[bool] = None,
) -> List[Divergence]:
    """Cross-check one generated case end-to-end.  Engine exceptions are
    reported as ``crash`` divergences rather than raised.

    ``auto_reorder`` arms dynamic sifting in every symbolic engine the
    case spins up; the verdicts must not change.  ``portfolio`` (K)
    installs ordering-portfolio heuristic ``seed % K`` as the explicit
    variable order — deterministic round-robin rather than racing, so
    every candidate order faces the oracle across a sweep while
    parallel and serial sweeps stay bit-identical.  ``shared_shapes``
    additionally verifies a wrapper design instantiating the generated
    model twice: the shared-shape elaboration (second instance built by
    BDD substitution, never table-encoded) must reach exactly the same
    state set as a plain flatten of the identical wrapper — the
    flattened path is itself oracle-validated by the rest of the trial
    (see docs/hierarchy.md)."""
    divergences: List[Divergence] = []
    model = case["model"]
    order = None
    if portfolio:
        from repro.ordering_portfolio import portfolio_order_for

        _, order = portfolio_order_for(model, portfolio, seed)
    with stats.phase("fuzz.oracle"):
        kripke = ExplicitKripke(model)
        ex_reached, ex_rings = kripke.reachable()
    latch_names = kripke.latch_names

    # -- reachability --------------------------------------------------
    with stats.phase("fuzz.reach"):
        fsm = SymbolicFsm(model, tracer=stats.tracer, auto_reorder=auto_reorder,
                          order=order, batch_apply=batch_apply)
        fsm.build_transition(method=case["build_method"])
        reach = fsm.reachable(partitioned=case["partitioned"])
        sym_reached = decode_states(fsm, reach.reached, latch_names)
        if sym_reached != ex_reached:
            divergences.append(
                Divergence(
                    "reach", seed,
                    f"reachable sets differ: symbolic-only "
                    f"{_fmt_states(sym_reached - ex_reached)}, oracle-only "
                    f"{_fmt_states(ex_reached - sym_reached)}",
                )
            )
        if fsm.count_states(reach.reached) != len(ex_reached):
            divergences.append(
                Divergence(
                    "reach", seed,
                    f"count_states says {fsm.count_states(reach.reached)}, "
                    f"oracle says {len(ex_reached)}",
                )
            )
        if len(reach.rings) != len(ex_rings):
            divergences.append(
                Divergence(
                    "reach", seed,
                    f"BFS depth differs: {len(reach.rings)} symbolic rings "
                    f"vs {len(ex_rings)} oracle rings",
                )
            )
        else:
            for depth, (ring, ex_ring) in enumerate(zip(reach.rings, ex_rings)):
                if decode_states(fsm, ring, latch_names) != ex_ring:
                    divergences.append(
                        Divergence(
                            "reach", seed, f"BFS ring {depth} differs"
                        )
                    )
                    break

    # -- fair CTL ------------------------------------------------------
    with stats.phase("fuzz.mc"):
        spec = fairness_spec_from_descs(fsm, case["fairness"])
        mc = ModelChecker(fsm, fairness=spec)
        emc = ExplicitModelChecker.for_kripke(
            kripke, system_fairness_from_descs(kripke, case["fairness"])
        )
        for formula in case["formulas"]:
            sym_sat = mc.eval(formula)
            ex_sat = emc.eval(formula)
            for state in kripke.states:
                sym_member = fsm.bdd.eval(
                    sym_sat, state_bits(fsm, state, latch_names)
                )
                if sym_member != (state in ex_sat):
                    side = "symbolic" if sym_member else "oracle"
                    divergences.append(
                        Divergence(
                            "ctl", seed,
                            f"{format_ctl(formula)}: only {side} satisfies "
                            f"state {'/'.join(state)}",
                        )
                    )
                    break
        invariant = case["invariant"]
        sym_verdict = mc.check(invariant).holds
        ex_verdict = kripke.init_states <= emc.eval(invariant)
        if sym_verdict != ex_verdict:
            divergences.append(
                Divergence(
                    "invariant", seed,
                    f"{format_ctl(invariant)}: fast-path verdict "
                    f"{sym_verdict}, oracle verdict {ex_verdict}",
                )
            )

    # -- language containment ------------------------------------------
    with stats.phase("fuzz.lc"):
        automaton = automaton_from_desc(case["automaton"])
        lc_fsm = SymbolicFsm(
            model, tracer=stats.tracer, auto_reorder=auto_reorder,
            order=order, batch_apply=batch_apply,
        )
        lc_spec = fairness_spec_from_descs(lc_fsm, case["fairness"])
        lc = check_containment(
            lc_fsm, automaton, system_fairness=lc_spec,
            quantify_method=case["build_method"],
        )
        explicit = check_containment_explicit(
            kripke,
            automaton_from_desc(case["automaton"]),
            system_fairness_from_descs(kripke, case["fairness"]),
        )
        if lc.holds != explicit.holds:
            divergences.append(
                Divergence(
                    "lc", seed,
                    f"containment verdict: symbolic {lc.holds}, "
                    f"oracle {explicit.holds}"
                    + (" (early-fail path)" if lc.early_failure else ""),
                )
            )
        elif not lc.holds:
            trace = lc_counterexample(lc)
            problems = validate_lc_trace(
                kripke, lc.monitor.automaton, trace,
                monitor_var=f"{automaton.name}.state",
            )
            for problem in problems:
                divergences.append(Divergence("trace", seed, problem))

    # -- shared-shape replica (optional) -------------------------------
    if shared_shapes:
        with stats.phase("fuzz.shapes"):
            divergences.extend(
                _shared_shape_replica_check(
                    case, seed, stats, auto_reorder=auto_reorder,
                    batch_apply=batch_apply,
                )
            )

    # Fold the per-trial engines' own phase timers (encode, build_tr,
    # reach, mc, lc) into the sweep-level collector.
    stats.merge(fsm.stats)
    stats.merge(lc_fsm.stats)
    return divergences


def _shared_shape_replica_check(
    case: dict,
    seed: int,
    stats: EngineStats,
    auto_reorder: Optional[int] = None,
    batch_apply: Optional[bool] = None,
) -> List[Divergence]:
    """Verify shared-shape elaboration on a two-instance replica design.

    A wrapper model instantiates the generated model twice with all
    ports dangling.  The same wrapper is run twice — once through
    shape-aware :func:`elaborate` (the second instance is never
    table-encoded, only substituted) and once through plain
    :func:`flatten` — and the two reachable state sets must agree
    exactly.  The flattened path is oracle-validated by the rest of the
    trial, so parity here pins substitution correctness on every fuzz
    seed.  (Note the product's reachable set is *not* simply ``R x R``:
    synchronous copies can only pair states reachable at a common exact
    depth, so an oracle-derived count would be wrong in general.)
    """
    from repro.blifmv import Design
    from repro.blifmv.hierarchy import elaborate, flatten
    from repro.blifmv.ast import Model, Subckt

    model = case["model"]
    divergences: List[Divergence] = []
    top = Model(name="replica_top")
    top.subckts.append(Subckt(model=model.name, instance="a", connections={}))
    top.subckts.append(Subckt(model=model.name, instance="b", connections={}))
    design = Design(models={"replica_top": top, model.name: model},
                    root="replica_top")
    elab = elaborate(design)
    shared = SymbolicFsm(elab, tracer=stats.tracer, auto_reorder=auto_reorder,
                         batch_apply=batch_apply)
    shared.build_transition(method=case["build_method"])
    shared_reach = shared.reachable(partitioned=case["partitioned"])
    shared_count = shared.count_states(shared_reach.reached)

    plain = SymbolicFsm(
        flatten(design), tracer=stats.tracer, auto_reorder=auto_reorder,
        batch_apply=batch_apply,
    )
    plain.build_transition(method=case["build_method"])
    plain_reach = plain.reachable(partitioned=case["partitioned"])
    plain_count = plain.count_states(plain_reach.reached)

    latch_names = [latch.output for latch in elab.flat.latches]
    shared_states = decode_states(shared, shared_reach.reached, latch_names)
    plain_states = decode_states(plain, plain_reach.reached, latch_names)
    if shared_states != plain_states:
        divergences.append(
            Divergence(
                "shapes", seed,
                f"replica reachable sets differ: shared-only "
                f"{_fmt_states(shared_states - plain_states)}, flatten-only "
                f"{_fmt_states(plain_states - shared_states)}",
            )
        )
    elif shared_count != plain_count:
        divergences.append(
            Divergence(
                "shapes", seed,
                f"replica state counts differ: shared-shape {shared_count}, "
                f"plain flatten {plain_count}",
            )
        )
    if shared.network.instances_substituted < 1:
        divergences.append(
            Divergence(
                "shapes", seed,
                "replica design encoded without any instance substitution "
                f"(shapes_encoded={shared.network.shapes_encoded})",
            )
        )
    stats.merge(shared.stats)
    stats.merge(plain.stats)
    return divergences


def _safe_run_case(
    case: dict,
    seed: int,
    stats: EngineStats,
    auto_reorder: Optional[int] = None,
    portfolio: Optional[int] = None,
    shared_shapes: bool = False,
    batch_apply: Optional[bool] = None,
) -> List[Divergence]:
    try:
        return run_case(
            case, seed, stats, auto_reorder=auto_reorder, portfolio=portfolio,
            shared_shapes=shared_shapes, batch_apply=batch_apply,
        )
    except Exception:
        tail = traceback.format_exc().strip().splitlines()[-1]
        return [Divergence("crash", seed, tail)]


# ----------------------------------------------------------------------
# Trials, sweeps, corpus
# ----------------------------------------------------------------------


def _ops_rng(seed: int) -> random.Random:
    return random.Random((seed << 1) | 1)


def _case_rng(seed: int) -> random.Random:
    return random.Random(seed << 1)


def run_trial(
    seed: int,
    stats: Optional[EngineStats] = None,
    max_space: int = ORACLE_MAX_SPACE,
    keep_case: bool = False,
    auto_reorder: Optional[int] = None,
    portfolio: Optional[int] = None,
    shared_shapes: bool = False,
    batch_apply: Optional[bool] = None,
) -> TrialReport:
    """One full differential trial from one seed."""
    stats = stats if stats is not None else EngineStats()
    start = time.perf_counter()
    divergences: List[Divergence] = []
    with stats.phase("fuzz.bddops"):
        divergences.extend(
            bddops_trial(_ops_rng(seed), seed, auto_reorder=auto_reorder,
                         batch_apply=batch_apply)
        )
    with stats.phase("fuzz.gen"):
        case = gen_case(_case_rng(seed), max_space=max_space)
    divergences.extend(
        _safe_run_case(
            case, seed, stats, auto_reorder=auto_reorder, portfolio=portfolio,
            shared_shapes=shared_shapes, batch_apply=batch_apply,
        )
    )
    return TrialReport(
        seed=seed,
        divergences=divergences,
        seconds=time.perf_counter() - start,
        case=case if keep_case else None,
    )


def _shrink_and_describe(
    case: dict,
    seed: int,
    areas: Set[str],
    auto_reorder: Optional[int] = None,
    portfolio: Optional[int] = None,
    shared_shapes: bool = False,
    batch_apply: Optional[bool] = None,
) -> dict:
    """Minimize a failing case while any of ``areas`` keeps diverging."""

    def still_fails(candidate: dict) -> bool:
        found = _safe_run_case(
            candidate, seed, EngineStats(), auto_reorder=auto_reorder,
            portfolio=portfolio, shared_shapes=shared_shapes,
            batch_apply=batch_apply,
        )
        return any(d.area in areas for d in found)

    return shrink_case(case, still_fails)


def write_corpus_entry(
    corpus_dir: Path,
    seed: int,
    areas: Set[str],
    case: Optional[dict],
    note: str,
) -> str:
    """Persist one repro; returns the written path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    kind = "bddops" if areas == {"bddops"} else "case"
    entry: dict = {
        "kind": kind,
        "seed": seed,
        "areas": sorted(areas),
        "note": note,
    }
    if kind == "case" and case is not None:
        entry["payload"] = case_to_payload(case)
    path = corpus_dir / f"seed{seed:06d}_{'_'.join(sorted(areas))}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return str(path)


def replay_corpus_entry(entry: dict) -> List[Divergence]:
    """Re-run a corpus repro; a healthy tree returns no divergences."""
    seed = entry["seed"]
    if entry["kind"] == "bddops":
        return bddops_trial(_ops_rng(seed), seed)
    if entry["kind"] == "case":
        case = case_from_payload(entry["payload"])
        return _safe_run_case(case, seed, EngineStats())
    raise ValueError(f"unknown corpus entry kind {entry['kind']!r}")


def replay_corpus_dir(corpus_dir) -> Dict[str, List[Divergence]]:
    """Replay every ``*.json`` repro under ``corpus_dir``."""
    out: Dict[str, List[Divergence]] = {}
    for path in sorted(Path(corpus_dir).glob("*.json")):
        entry = json.loads(path.read_text())
        out[path.name] = replay_corpus_entry(entry)
    return out


def run_sweep(
    trials: int,
    seed0: int = 0,
    stats: Optional[EngineStats] = None,
    corpus_dir: Optional[str] = None,
    shrink: bool = True,
    max_space: int = ORACLE_MAX_SPACE,
    progress=None,
    auto_reorder: Optional[int] = None,
    portfolio: Optional[int] = None,
    shared_shapes: bool = False,
    batch_apply: Optional[bool] = None,
) -> SweepReport:
    """Run ``trials`` seeded trials; shrink and record any divergence."""
    stats = stats if stats is not None else EngineStats()
    sweep = SweepReport(trials=trials, seed0=seed0)
    start = time.perf_counter()
    for i in range(trials):
        seed = seed0 + i
        with stats.tracer.span("fuzz.trial", cat="fuzz", seed=seed) as span:
            report = run_trial(
                seed, stats=stats, max_space=max_space, keep_case=True,
                auto_reorder=auto_reorder, portfolio=portfolio,
                shared_shapes=shared_shapes, batch_apply=batch_apply,
            )
            span.add(divergences=len(report.divergences))
        sweep.reports.append(report)
        if progress is not None:
            progress(report)
        if report.divergences and corpus_dir is not None:
            areas = {d.area for d in report.divergences}
            case = report.case
            if shrink and case is not None and areas != {"bddops"}:
                with stats.phase("fuzz.shrink"):
                    case = _shrink_and_describe(
                        case, seed, areas - {"bddops"},
                        auto_reorder=auto_reorder, portfolio=portfolio,
                        shared_shapes=shared_shapes, batch_apply=batch_apply,
                    )
            path = write_corpus_entry(
                corpus_dir, seed, areas, case,
                note=str(report.divergences[0]),
            )
            sweep.corpus_written.append(path)
    sweep.seconds = time.perf_counter() - start
    return sweep
