"""Language containment checking (paper §5.2-5.4).

``L(system) ⊆ L(property)`` is decided as language emptiness of the
product machine: attach the (deterministic, completed) property automaton
as a monitor, complement its edge-Rabin acceptance into Streett
constraints, and search for a reachable cycle that is fair for the system
fairness constraints *and* the complemented acceptance.  A fair cycle is
a counterexample; none means containment holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.automata.automaton import AttachedMonitor, Automaton, attach
from repro.automata.fairness import (
    FairnessSpec,
    NormalizedFairness,
    complement_rabin,
)
from repro.blifmv.ast import Model
from repro.lc.earlyfail import doomed_states, early_violation
from repro.lc.faircycle import FairGraph, FairScc, find_fair_scc
from repro.network.fsm import ReachResult, SymbolicFsm


@dataclass
class LcResult:
    """Outcome of one language-containment check."""

    automaton: Automaton
    holds: bool
    fair_scc: Optional[FairScc]
    monitor: AttachedMonitor
    fsm: SymbolicFsm
    graph: FairGraph
    reach: ReachResult
    fairness: NormalizedFairness
    seconds: float
    early_failure: bool = False

    @property
    def failed(self) -> bool:
        return not self.holds


class _EarlyStop(Exception):
    def __init__(self, scc: FairScc, depth: int):
        self.scc = scc
        self.depth = depth


def check_containment(
    system: Union[Model, SymbolicFsm],
    automaton: Automaton,
    system_fairness: Optional[FairnessSpec] = None,
    quantify_method: str = "greedy",
    early_fail: bool = True,
    early_fail_interval: int = 4,
    auto_gc: Optional[int] = None,
    cache_limit: Optional[int] = None,
) -> LcResult:
    """Check that every fair behaviour of ``system`` is accepted by
    ``automaton``.

    ``system`` is a flat model (a fresh machine is encoded) or an
    un-built :class:`SymbolicFsm` (so several monitors could share one
    machine).  With ``early_fail`` the doomed-region check of
    :mod:`repro.lc.earlyfail` runs every ``early_fail_interval``
    reachability steps.  ``auto_gc``/``cache_limit`` configure the kernel
    when a fresh machine is encoded (ignored for a prebuilt ``fsm``).
    """
    fsm = (
        system
        if isinstance(system, SymbolicFsm)
        else SymbolicFsm(system, auto_gc=auto_gc, cache_limit=cache_limit)
    )
    with fsm.stats.phase("lc") as timer:
        result = _check_containment(
            fsm, automaton, system_fairness, quantify_method,
            early_fail, early_fail_interval,
        )
    result.seconds = timer.seconds
    return result


def _check_containment(
    fsm: SymbolicFsm,
    automaton: Automaton,
    system_fairness: Optional[FairnessSpec],
    quantify_method: str,
    early_fail: bool,
    early_fail_interval: int,
) -> LcResult:
    bdd = fsm.bdd
    spec = system_fairness if system_fairness is not None else FairnessSpec()
    # The caller's constraint handles must survive the GC/reorder safe
    # points inside build_transition, so root them before building.
    bdd.register_root_group("lc.sysfair", spec.nodes())
    monitor = attach(fsm, automaton)
    fsm.build_transition(method=quantify_method)
    graph = FairGraph(fsm)

    sys_norm = spec.normalize(bdd, bdd.true)
    property_streett = complement_rabin(monitor.rabin_pairs_bdd())
    combined = FairnessSpec(list(spec) + list(property_streett)).normalize(
        bdd, bdd.true
    )
    bdd.register_root_group("lc.fairness", combined.nodes())

    doomed = doomed_states(monitor.automaton)
    doomed_bdd = monitor.state_bdd(doomed) if doomed else bdd.false
    bdd.register_root("lc.doomed", doomed_bdd)
    early_scc: Optional[FairScc] = None
    early_depth: Optional[int] = None

    reached_acc = [fsm.init]
    doomed_hit = [False]

    def observer(depth: int, frontier: int) -> None:
        reached_acc[0] = bdd.or_(reached_acc[0], frontier)
        bdd.register_root("lc.reached", reached_acc[0])
        if not early_fail or doomed_bdd == bdd.false:
            return
        if bdd.and_(frontier, doomed_bdd) == bdd.false:
            return
        first_hit = not doomed_hit[0]
        doomed_hit[0] = True
        # Check immediately when the doomed region is first entered, then
        # periodically (most bugs surface within the first few steps, §5.4).
        if not first_hit and depth % early_fail_interval != 0:
            return
        if fsm.stats.tracer.enabled:
            fsm.stats.tracer.instant(
                "lc.early_check", cat="lc", depth=depth, first_hit=first_hit
            )
        scc = early_violation(graph, sys_norm, reached_acc[0], doomed_bdd)
        if scc is not None:
            if fsm.stats.tracer.enabled:
                fsm.stats.tracer.instant("lc.early_stop", cat="lc", depth=depth)
            raise _EarlyStop(scc, depth)

    try:
        reach = fsm.reachable(observer=observer)
    except _EarlyStop as stop:
        early_scc = stop.scc
        early_depth = stop.depth
        reach = ReachResult(
            reached=reached_acc[0],
            rings=[],
            iterations=early_depth,
            converged=False,
            seconds=0.0,
        )
        # Rebuild the onion rings up to the stop depth for the debugger.
        # The witness SCC must survive the safe points of that second
        # reachability pass, so root its nodes first.
        bdd.register_root_group(
            "lc.early_scc",
            [early_scc.states, early_scc.trans]
            + [edges for edges, _label in early_scc.required_edges],
        )
        reach = fsm.reachable(max_iterations=early_depth + 1)

    if early_scc is not None:
        return LcResult(
            automaton=automaton,
            holds=False,
            fair_scc=early_scc,
            monitor=monitor,
            fsm=fsm,
            graph=graph,
            reach=reach,
            fairness=combined,
            seconds=0.0,
            early_failure=True,
        )

    scc = find_fair_scc(graph, combined, reach.reached)
    return LcResult(
        automaton=automaton,
        holds=scc is None,
        fair_scc=scc,
        monitor=monitor,
        fsm=fsm,
        graph=graph,
        reach=reach,
        fairness=combined,
        seconds=0.0,
    )


def language_empty(
    fsm: SymbolicFsm,
    fairness: Optional[FairnessSpec] = None,
) -> bool:
    """True iff the machine has no reachable fair run (no monitor involved).

    Useful on its own: an abstraction whose language is empty is trivial
    and hence useless (paper §5 on why fairness constraints are needed).
    """
    bdd = fsm.bdd
    graph = FairGraph(fsm)
    spec = fairness if fairness is not None else FairnessSpec()
    normalized = spec.normalize(bdd, bdd.true)
    bdd.register_root_group("lc.fairness", normalized.nodes())
    reached = fsm.reachable().reached
    return find_fair_scc(graph, normalized, reached) is None
