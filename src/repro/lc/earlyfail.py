"""Early failure detection (paper §5.4).

Verification is mostly run on properties that *fail*, so HSIS spends
effort detecting failures before the full fair-path computation:

1. **Frontier checking** — take a few reachability steps and check the
   property on the subset of states reached so far.  If it fails on a
   subset, it fails on the whole reachable set.  (For model checking this
   lives in the ``AG`` fast path of :mod:`repro.ctl.modelcheck`.)
2. **Fairness-graph structure** — for language containment, inspect the
   structure of the graph induced by the acceptance conditions: once the
   monitor enters a *doomed* automaton state (one from which no accepting
   run can continue, e.g. the trap of a safety monitor), any system-fair
   infinite continuation is a counterexample, and a fair cycle can be
   searched in the small already-reached region only.

``doomed_states`` is computed on the automaton digraph with networkx:
state *s* is hopeful for Rabin pair (fin, inf) iff it can reach — without
using fin edges for the cyclic part — a strongly connected subgraph
containing an inf edge and no fin edge.  Doomed = hopeful for no pair.
This is structural (guards are ignored), hence a sound under-approximation
of the truly doomed states.
"""

from __future__ import annotations

from typing import Optional, Set

import networkx as nx

from repro.automata.automaton import Automaton
from repro.automata.fairness import NormalizedFairness
from repro.lc.faircycle import FairGraph, FairScc, find_fair_scc


def doomed_states(automaton: Automaton) -> Set[str]:
    """Automaton states from which no accepting run can possibly continue."""
    graph = nx.DiGraph()
    graph.add_nodes_from(automaton.states)
    for e in automaton.edges:
        graph.add_edge(e.src, e.dst)
    hopeful: Set[str] = set()
    for fin, inf in automaton.rabin_pairs:
        # Cyclic part may not use fin edges.
        pruned = nx.DiGraph()
        pruned.add_nodes_from(automaton.states)
        for e in automaton.edges:
            if (e.src, e.dst) not in fin:
                pruned.add_edge(e.src, e.dst)
        good_core: Set[str] = set()
        for component in nx.strongly_connected_components(pruned):
            edges_inside = {
                (u, v)
                for u, v in pruned.edges(component)
                if v in component
            }
            if not edges_inside:
                continue
            if edges_inside & set(inf):
                good_core |= component
        if not good_core:
            continue
        # The prefix may use any edge.
        for state in automaton.states:
            if state in hopeful:
                continue
            if state in good_core or any(
                nx.has_path(graph, state, target) for target in good_core
            ):
                hopeful.add(state)
    return set(automaton.states) - hopeful


def early_violation(
    graph: FairGraph,
    system_fairness: NormalizedFairness,
    reached_so_far: int,
    doomed_bdd: int,
) -> Optional[FairScc]:
    """Look for a system-fair cycle inside the doomed, already-reached region.

    Doomed monitor states are closed under transitions, so any system-fair
    cycle whose states are doomed witnesses a containment failure — no
    property acceptance complement is needed, which makes this check much
    cheaper than the full fair-path computation.
    """
    bdd = graph.bdd
    region = bdd.and_(reached_so_far, doomed_bdd)
    if region == bdd.false:
        return None
    return find_fair_scc(graph, system_fairness, region)
