"""Language containment: emptiness, fair cycles, early failure detection."""

from repro.lc.containment import LcResult, check_containment, language_empty
from repro.lc.earlyfail import doomed_states, early_violation
from repro.lc.faircycle import (
    FairGraph,
    FairScc,
    all_fair_states,
    fair_hull,
    find_fair_scc,
)

__all__ = [
    "LcResult",
    "check_containment",
    "language_empty",
    "doomed_states",
    "early_violation",
    "FairGraph",
    "FairScc",
    "all_fair_states",
    "fair_hull",
    "find_fair_scc",
]
