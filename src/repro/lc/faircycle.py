"""Fair-cycle detection: the BDD-based core of language emptiness and
fair CTL (paper §5.3).

Both language containment and fair CTL model checking reduce to *cycle
exploration*: does a reachable cycle exist that satisfies all fairness
constraints?  Following HSIS (which builds on Emerson-Lei [10] and the
efficient ω-regular containment operators of Hojati et al. [17]), the
engine works in two phases:

1. **Hull computation** (:func:`fair_hull`) — an Emerson-Lei-style
   greatest fixpoint that prunes the state space to an over-approximation
   of the states lying on fair cycles.  For pure (generalized) Büchi
   fairness the hull is exact: every hull state starts a fair path inside
   the hull.
2. **SCC refinement** (:func:`find_fair_scc`) — exact emptiness for
   Streett conditions via symbolic SCC enumeration (forward/backward
   closure from a seed state) with the classic Streett edge-removal
   recursion: an SCC containing ``E``-edges but no ``F``-edge cannot use
   those ``E``-edges, so they are deleted and the sub-SCCs re-examined.

Edge sets are BDDs over (present, next) state bits and are always
interpreted intersected with the transition relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.automata.fairness import NormalizedFairness
from repro.bdd.manager import BDD
from repro.bdd.ops import minterm


class FairGraph:
    """Symbolic graph view of a :class:`~repro.network.fsm.SymbolicFsm`.

    Bundles the rename maps and quantification cubes needed for
    restricted forward/backward images over arbitrary sub-relations.
    """

    def __init__(self, fsm, trans: Optional[int] = None):
        self.fsm = fsm
        self.bdd: BDD = fsm.bdd
        self.trans: int = fsm.require_transition() if trans is None else trans
        self._x_cube = fsm.x_cube()
        self._y_cube = fsm.y_cube()
        self._x_to_y = fsm.x_to_y()
        self._y_to_x = fsm.y_to_x()
        self.space: int = fsm.state_domain()
        # The graph's fixed nodes must survive any auto-GC safe point.
        self.bdd.register_root("graph.trans", self.trans)
        self.bdd.register_root("graph.x_cube", self._x_cube)
        self.bdd.register_root("graph.y_cube", self._y_cube)
        self.bdd.register_root("graph.space", self.space)

    # -- primitive images ------------------------------------------------

    def post(self, states: int, trans: Optional[int] = None) -> int:
        """Successor states of ``states`` under ``trans``."""
        t = self.trans if trans is None else trans
        nxt = self.bdd.and_exists(t, states, self._x_cube)
        return self.bdd.rename(nxt, self._y_to_x, strict=False)

    def pre(self, states: int, trans: Optional[int] = None) -> int:
        """Predecessor states of ``states`` under ``trans``."""
        t = self.trans if trans is None else trans
        primed = self.bdd.rename(states, self._x_to_y, strict=False)
        return self.bdd.and_exists(t, primed, self._y_cube)

    def restrict(self, trans: int, states: int) -> int:
        """Edges with both endpoints inside ``states``."""
        bdd = self.bdd
        primed = bdd.rename(states, self._x_to_y, strict=False)
        return bdd.and_(bdd.and_(trans, states), primed)

    def edge_sources(self, edges: int, trans: int) -> int:
        """States with an outgoing edge in ``edges`` (within ``trans``)."""
        return self.bdd.exist(self._y_cube, self.bdd.and_(trans, edges))

    def prime(self, states: int) -> int:
        return self.bdd.rename(states, self._x_to_y, strict=False)

    def unprime(self, states: int) -> int:
        return self.bdd.rename(states, self._y_to_x, strict=False)

    # -- closures ----------------------------------------------------------

    def backward_within(self, region: int, target: int, trans: int) -> int:
        """States of ``region`` with a path inside ``region`` to ``target``.

        Frontier-based: each step takes the preimage of the newly added
        states only, which keeps the per-iteration BDD work proportional
        to the frontier rather than the accumulated set.
        """
        bdd = self.bdd
        reach = bdd.and_(target, region)
        frontier = reach
        while frontier != bdd.false:
            frontier = bdd.diff(bdd.and_(self.pre(frontier, trans), region), reach)
            reach = bdd.or_(reach, frontier)
        return reach

    def forward_within(self, region: int, source: int, trans: int) -> int:
        """States of ``region`` reachable from ``source`` inside ``region``."""
        bdd = self.bdd
        reach = bdd.and_(source, region)
        frontier = reach
        while frontier != bdd.false:
            frontier = bdd.diff(bdd.and_(self.post(frontier, trans), region), reach)
            reach = bdd.or_(reach, frontier)
        return reach

    def invariant_core(self, region: int, trans: int) -> int:
        """Greatest subset of ``region`` where every state has a successor
        inside the subset (nu Z. region & pre(Z))."""
        bdd = self.bdd
        z = region
        while True:
            nz = bdd.and_(z, self.pre(z, trans))
            if nz == z:
                return z
            z = nz

    def pick_state(self, states: int) -> Optional[int]:
        """One concrete state of ``states`` as a minterm BDD (None if empty)."""
        bdd = self.bdd
        constrained = bdd.and_(states, self.space)
        cube = bdd.pick_cube(constrained, self.fsm.x_bits())
        if cube is None:
            return None
        return minterm(bdd, cube)


# ----------------------------------------------------------------------
# Hull (Emerson-Lei fixpoint)
# ----------------------------------------------------------------------


def effective_cycle_relation(
    graph: FairGraph, fairness: NormalizedFairness
) -> Tuple[int, NormalizedFairness]:
    """Preprocess fairness into ``(cycle_relation, residual_fairness)``.

    A Streett pair ``inf(E) -> inf(F)`` with ``F`` unsatisfiable means a
    fair cycle may not contain *any* ``E``-edge (it would occur
    infinitely often with no ``F`` to compensate), so those edges are
    deleted from the relation used for cycle detection — prefixes may
    still use them.  This is exact and collapses the search for the very
    common "complemented recurrence acceptance" case: instead of hull
    refinement over thousands of tiny SCCs, the constraint disappears
    into the graph.
    """
    bdd = graph.bdd
    t_eff = graph.trans
    residual = NormalizedFairness(buchi=list(fairness.buchi), streett=[])
    for e_set, f_set, label in fairness.streett:
        if bdd.and_(graph.trans, f_set) == bdd.false:
            t_eff = bdd.diff(t_eff, e_set)
        else:
            residual.streett.append((e_set, f_set, label))
    return t_eff, residual


def fair_hull(
    graph: FairGraph,
    fairness: NormalizedFairness,
    space: int,
    trans: Optional[int] = None,
) -> int:
    """Emerson-Lei hull: over-approximation of the fair-cycle states.

    Exact for generalized Büchi; an upper bound in the presence of
    Streett pairs (refined by :func:`find_fair_scc`).  With no fairness
    constraints at all this degenerates to "states on or leading to some
    cycle" (``nu Z . EX Z``), which is what plain infinite behaviour
    requires.

    Implementation notes: each fairness term's ``T & edges`` conjunction
    is precomputed once; paths "within Z" never materialize the
    restricted relation ``T & Z & Z'`` — preimages over the full relation
    intersected with ``Z`` are equivalent whenever the targets lie inside
    ``Z``, and much cheaper.
    """
    bdd = graph.bdd
    z = bdd.and_(space, graph.space)
    t = graph.trans if trans is None else trans
    buchi_trans = [bdd.and_(t, edges) for edges, _label in fairness.buchi]
    if any(tb == bdd.false for tb in buchi_trans):
        return bdd.false  # a required edge set has no edges at all
    streett_f_trans = [bdd.and_(t, f) for _e, f, _label in fairness.streett]
    streett_avoid_trans = [bdd.diff(t, e) for e, _f, _label in fairness.streett]

    def sources_within(trans_subset: int, region: int) -> int:
        """States of ``region`` with a ``trans_subset`` edge into ``region``."""
        return bdd.and_(region, graph.pre(region, trans_subset))

    while True:
        old = z
        # Every hull state needs a successor inside the hull.
        z = bdd.and_(z, graph.pre(z, t))
        for tb in buchi_trans:
            target = sources_within(tb, z)
            z = graph.backward_within(z, target, t)
        for tf, t_avoid in zip(streett_f_trans, streett_avoid_trans):
            target_f = sources_within(tf, z)
            avoid = graph.invariant_core(z, t_avoid)
            z = graph.backward_within(z, bdd.or_(target_f, avoid), t)
        if z == old:
            return z


# ----------------------------------------------------------------------
# Exact SCC-based search (Streett refinement, Xie-Beerel enumeration)
# ----------------------------------------------------------------------


@dataclass
class FairScc:
    """A fair strongly connected subgraph, with witness requirements.

    ``required_edges`` lists the symbolic edge sets a witness cycle must
    traverse (each Büchi set, plus the ``F`` side of every Streett pair
    whose ``E`` side occurs in the subgraph); the debugger threads a lasso
    through all of them.
    """

    states: int
    trans: int
    required_edges: List[Tuple[int, str]] = field(default_factory=list)


def _check_scc(
    graph: FairGraph,
    scc: int,
    trans: int,
    fairness: NormalizedFairness,
    depth: int = 0,
) -> Optional[FairScc]:
    bdd = graph.bdd
    t_scc = graph.restrict(trans, scc)
    if t_scc == bdd.false:
        return None
    for edges, _label in fairness.buchi:
        if bdd.and_(t_scc, edges) == bdd.false:
            return None
    removable = bdd.false
    for e_set, f_set, _label in fairness.streett:
        if (
            bdd.and_(t_scc, e_set) != bdd.false
            and bdd.and_(t_scc, f_set) == bdd.false
        ):
            removable = bdd.or_(removable, e_set)
    if removable != bdd.false:
        # Offending E-edges cannot appear on any fair cycle here: delete
        # them and re-decompose.
        pruned = bdd.diff(t_scc, removable)
        return _enumerate_sccs(graph, scc, pruned, fairness, depth + 1)
    required: List[Tuple[int, str]] = []
    for edges, label in fairness.buchi:
        required.append((bdd.and_(t_scc, edges), label))
    for e_set, f_set, label in fairness.streett:
        if bdd.and_(t_scc, e_set) != bdd.false:
            required.append((bdd.and_(t_scc, f_set), label))
    return FairScc(states=scc, trans=t_scc, required_edges=required)


def _trim(graph: FairGraph, region: int, trans: int) -> int:
    """Shrink ``region`` to states with both a predecessor and a successor
    inside it.  Every SCC state has both within its own SCC, so no SCC is
    lost, while transient fringe states — which would otherwise each cost
    a full seed-and-closure round — disappear in a cheap fixpoint."""
    bdd = graph.bdd
    while True:
        kept = bdd.and_(region, graph.pre(region, trans))
        kept = bdd.and_(kept, graph.post(kept, trans))
        if kept == region:
            return region
        region = kept


def _enumerate_sccs(
    graph: FairGraph,
    region: int,
    trans: int,
    fairness: NormalizedFairness,
    depth: int = 0,
) -> Optional[FairScc]:
    """Xie-Beerel symbolic SCC enumeration within ``region``.

    Divide and conquer: after carving out ``scc = fwd(seed) & bwd(seed)``
    the remainder splits into ``fwd \\ scc`` and ``region \\ fwd``, which
    contain no SCC spanning both — each part is trimmed and processed
    independently instead of re-sweeping the whole region per seed.
    """
    bdd = graph.bdd
    stack = [bdd.and_(region, graph.space)]
    while stack:
        part = _trim(graph, stack.pop(), trans)
        if part == bdd.false:
            continue
        seed = graph.pick_state(part)
        if seed is None:
            continue
        fwd = graph.forward_within(part, seed, trans)
        bwd = graph.backward_within(part, seed, trans)
        scc = bdd.and_(fwd, bwd)
        found = _check_scc(graph, scc, trans, fairness, depth)
        if found is not None:
            return found
        stack.append(bdd.diff(fwd, scc))
        stack.append(bdd.diff(part, fwd))
    return None


def find_fair_scc(
    graph: FairGraph,
    fairness: NormalizedFairness,
    space: int,
    use_hull: bool = True,
) -> Optional[FairScc]:
    """Exact search for a fair strongly connected subgraph within ``space``.

    Returns None iff no cycle within ``space`` satisfies all fairness
    constraints — i.e. the language (restricted to ``space``) is empty.
    The witness cycle uses only the *effective* relation (unsatisfiable
    Streett pairs compiled into edge deletions); the caller's prefix may
    use the full relation.
    """
    t_eff, residual = effective_cycle_relation(graph, fairness)
    region = (
        fair_hull(graph, residual, space, trans=t_eff) if use_hull else space
    )
    bdd = graph.bdd
    region = bdd.and_(region, space)
    if region == bdd.false:
        return None
    return _enumerate_sccs(graph, region, t_eff, residual)


def all_fair_states(
    graph: FairGraph,
    fairness: NormalizedFairness,
    space: int,
) -> int:
    """All states of ``space`` from which a fair path inside ``space`` exists.

    For pure Büchi fairness this is ``E[space U hull]`` with the exact
    Emerson-Lei hull.  With Streett pairs the hull may be strict, so fair
    SCCs are enumerated exhaustively and the backward closure taken from
    their union (exact, potentially slower — used by fair CTL only when
    Streett constraints are present).
    """
    bdd = graph.bdd
    t_eff, residual = effective_cycle_relation(graph, fairness)
    hull = fair_hull(graph, residual, space, trans=t_eff)
    if not residual.streett:
        region = bdd.and_(space, graph.space)
        return graph.backward_within(region, hull, graph.trans)
    # Exact: union of all fair SCCs inside the hull.
    region = hull
    cores = bdd.false
    while region != bdd.false:
        seed = graph.pick_state(region)
        if seed is None:
            break
        fwd = graph.forward_within(region, seed, t_eff)
        bwd = graph.backward_within(region, seed, t_eff)
        scc = bdd.and_(fwd, bwd)
        if _check_scc(graph, scc, t_eff, residual) is not None:
            cores = bdd.or_(cores, scc)
        region = bdd.diff(region, scc)
    return graph.backward_within(
        bdd.and_(space, graph.space), cores, graph.trans
    )
