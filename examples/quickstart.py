#!/usr/bin/env python3
"""Quickstart: the full HSIS flow of Figure 1 on a small bus arbiter.

Verilog is compiled to BLIF-MV (vl2mv), properties come from a PIF
description, the design is verified by both the CTL model checker and
the language-containment checker, and a failing property produces an
error trace — the "intelligent simulator" experience the paper closes
with: instead of the user conceiving an input sequence that reveals the
bug, the tool hands the sequence to the user.

Run:  python examples/quickstart.py
"""

from repro import SymbolicFsm, compile_verilog, flatten, parse_pif
from repro.ctl import ModelChecker
from repro.debug import CtlDebugger, format_lc_report
from repro.lc import check_containment

# A two-client bus arbiter with a seeded bug: on simultaneous requests
# both grants are asserted (the designer forgot the priority case).
VERILOG = r"""
module arbiter;
  reg g1, g2;
  wire r1, r2;
  initial g1 = 0;
  initial g2 = 0;

  // the environment may request at any time (non-determinism, paper
  // section 3): a closed system needs no external inputs
  assign r1 = $ND(0, 1);
  assign r2 = $ND(0, 1);

  always @(posedge clk) begin
    g1 <= r1;                 // BUG: should be r1 && !r2 (priority)
  end
  always @(posedge clk) begin
    g2 <= r2;
  end
endmodule
"""

# Properties in the Property Intermediate Format: a CTL formula and the
# equivalent Figure-2 style invariance automaton.
PIF = """
ctl mutual_exclusion :: AG !(g1=1 & g2=1)

automaton lc_mutual_exclusion
  states GOOD BAD
  initial GOOD
  edge GOOD GOOD :: !(g1=1 & g2=1)
  edge GOOD BAD  :: g1=1 & g2=1
  edge BAD BAD
  accept invariance GOOD
end
"""


def main() -> None:
    print("=== HSIS quickstart: Verilog -> BLIF-MV -> verify -> debug ===\n")

    print("* compiling Verilog with vl2mv...")
    design = compile_verilog(VERILOG)
    model = flatten(design)
    print(f"  model {model.name!r}: {len(model.latches)} latches, "
          f"{len(model.tables)} tables")

    print("* reading properties (PIF)...")
    pif = parse_pif(PIF)

    print("* building the product transition relation "
          "(greedy early quantification)...")
    fsm = SymbolicFsm(model)
    fsm.build_transition(method="greedy")
    reach = fsm.reachable()
    print(f"  reached {fsm.count_states(reach.reached)} states in "
          f"{reach.iterations} iterations")

    print("\n--- CTL model checking ---")
    checker = ModelChecker(fsm, reached=reach.reached)
    name, formula = pif.ctl_props[0]
    result = checker.check(formula)
    print(f"  {name}: {'PASS' if result.holds else 'FAIL'}   [{formula}]")
    if not result.holds:
        print("\n  interactive debugger (formula unfolding, paper section 6.2):")
        debugger = CtlDebugger(checker)
        print("  " + debugger.explain(formula).format().replace("\n", "\n  "))

    print("\n--- language containment ---")
    lc_fsm = SymbolicFsm(flatten(design))
    lc = check_containment(lc_fsm, pif.automaton("lc_mutual_exclusion"))
    print("  " + format_lc_report(lc).replace("\n", "\n  "))

    print("\nBoth checkers found the bug; the traces above show the exact")
    print("request sequence that asserts g1 and g2 together.  Fix the")
    print("arbiter (g1 <= r1 && !r2) and both properties pass.")


if __name__ == "__main__":
    main()
