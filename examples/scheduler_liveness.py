#!/usr/bin/env python3
"""Milner's scheduler: implicit state enumeration and fair liveness.

The scheduler's reachable space grows as ~ N * 2^N — the design class
that motivated BDD-based (implicit) state exploration: Table 1 of the
paper reports 2.7 million states explored in seconds.  This example

1. sweeps N and reports reached-state counts and times (watch the BDD
   node count stay small while the state count explodes),
2. verifies the liveness property "task 0 is started infinitely often"
   by language containment under the fairness constraints "nobody holds
   the token forever" and "no task runs forever" (paper §5.1), and
3. shows the same property *failing* without fairness, with the lasso
   counterexample exhibiting a token parked forever.

Run:  python examples/scheduler_liveness.py [max_n]
"""

import sys
import time

from repro.automata import FairnessSpec
from repro.debug import format_lc_report
from repro.lc import check_containment
from repro.models import scheduler
from repro.network import SymbolicFsm


def sweep(max_n: int) -> None:
    print("--- implicit state enumeration sweep ---")
    print(f"{'N':>4} {'states':>12} {'iters':>6} {'T nodes':>8} {'seconds':>8}")
    n = 4
    while n <= max_n:
        spec = scheduler.spec(n)
        fsm = SymbolicFsm(spec.flat())
        start = time.perf_counter()
        fsm.build_transition()
        reach = fsm.reachable()
        elapsed = time.perf_counter() - start
        print(f"{n:>4} {fsm.count_states(reach.reached):>12,} "
              f"{reach.iterations:>6} {fsm.bdd.size(fsm.trans):>8} "
              f"{elapsed:>8.2f}")
        n += 4


def liveness(n: int) -> None:
    spec = scheduler.spec(n)
    print(f"\n--- liveness at N={n}: task 0 starts infinitely often ---")

    fsm = SymbolicFsm(spec.flat())
    fairness = spec.pif.bind_fairness(fsm)
    print(f"fairness constraints: {len(fairness)} "
          "(negative state subsets: token movement + task completion)")
    start = time.perf_counter()
    result = check_containment(
        fsm, spec.pif.automaton("lc_task0_recurs"), system_fairness=fairness)
    print(f"with fairness:    {'PASS' if result.holds else 'FAIL'} "
          f"({time.perf_counter() - start:.1f}s)")

    fsm2 = SymbolicFsm(spec.flat())
    result2 = check_containment(
        fsm2, spec.pif.automaton("lc_task0_recurs"),
        system_fairness=FairnessSpec())
    print(f"without fairness: {'PASS' if result2.holds else 'FAIL'} "
          "(expected FAIL: the token may park forever)")
    if not result2.holds:
        print()
        print(format_lc_report(result2))


def main(max_n: int = 16) -> None:
    print("=== Milner's scheduler (paper Table 1, 'scheduler') ===\n")
    sweep(max_n)
    liveness(min(8, max_n))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
