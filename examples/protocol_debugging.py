#!/usr/bin/env python3
"""Debugging a data-link protocol: simulation, seeded bug, error traces.

The 2mdlc benchmark is an alternating-bit data-link controller.  This
example plays the HSIS debugging story end to end:

1. random simulation (the state-based simulator of paper §1 item 4)
   finds no problem in a few hundred steps — easy bugs only;
2. a bug is seeded into the receiver (it acknowledges with the *wrong*
   sequence bit), and the datapath-integrity property is checked:
   simulation still looks fine, but language containment catches the
   protocol livelock and prints the lasso;
3. the CTL debugger unfolds a failing formula step by step.

Run:  python examples/protocol_debugging.py
"""

from repro import SymbolicFsm, compile_verilog, flatten, parse_pif
from repro.ctl import ModelChecker
from repro.debug import CtlDebugger, format_lc_report
from repro.lc import check_containment
from repro.models import mdlc
from repro.sim import Simulator


def simulate(spec_name: str, fsm: SymbolicFsm, steps: int = 200) -> None:
    sim = Simulator(fsm, seed=1994)
    sim.reset()
    sim.run(steps)
    print(f"  simulated {steps} random steps on {spec_name}: "
          f"{sim.visited_count()} distinct states visited, no crash — "
          "but simulation proves nothing about liveness")


def main() -> None:
    width = 2  # small datapath keeps the demo quick
    print("=== 2mdlc protocol debugging ===\n")

    print("--- healthy controller ---")
    spec = mdlc.spec(width=width)
    fsm = SymbolicFsm(spec.flat())
    fsm.build_transition()
    simulate("2mdlc", fsm)

    lc_fsm = SymbolicFsm(spec.flat())
    result = check_containment(
        lc_fsm, spec.pif.automaton("lc_progress"),
        system_fairness=spec.pif.bind_fairness(lc_fsm))
    print(f"  lc_progress under fair channels: "
          f"{'PASS' if result.holds else 'FAIL'}")

    print("\n--- seeding a bug: receiver acks with the wrong bit ---")
    buggy_src = mdlc.verilog(width).replace(
        "avalid <= 1; abit <= fbit;", "avalid <= 1; abit <= !fbit;")
    buggy = flatten(compile_verilog(buggy_src))
    pif = parse_pif(mdlc.pif(width))

    sim_fsm = SymbolicFsm(buggy)
    sim_fsm.build_transition()
    simulate("buggy 2mdlc", sim_fsm)

    lc_fsm = SymbolicFsm(flatten(compile_verilog(buggy_src)))
    result = check_containment(
        lc_fsm, pif.automaton("lc_progress"),
        system_fairness=pif.bind_fairness(lc_fsm))
    print(f"  lc_progress: {'PASS' if result.holds else 'FAIL'} "
          "(expected FAIL: wrong-bit acks livelock the sender)")
    if not result.holds:
        print()
        print(format_lc_report(result))

    print("\n--- CTL debugger on the buggy controller ---")
    checker = ModelChecker(sim_fsm, fairness=pif.bind_fairness(sim_fsm))
    debugger = CtlDebugger(checker)
    # The sender never accepts a second message: sbit stays 0.
    node = debugger.explain("EF sbit=1")
    print(node.format())


if __name__ == "__main__":
    main()
