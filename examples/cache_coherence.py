#!/usr/bin/env python3
"""Verifying the Gigamax-style cache coherence protocol (paper Table 1).

Walks the full gigamax benchmark: build the product machine, compute the
reached states, check all nine CTL coherence properties and the
language-containment single-writer automaton, then demonstrate the two
BDD-minimization mechanisms of paper §1 item 3 — reached-state don't
cares and bisimulation state equivalence.

Run:  python examples/cache_coherence.py [n_processors]
"""

import sys
import time

from repro.ctl import ModelChecker
from repro.lc import check_containment
from repro.minimize import (
    bisimulation_partition,
    minimize_with_equivalence,
    minimize_with_reached,
    quotient_size,
)
from repro.models import gigamax
from repro.network import SymbolicFsm


def main(n: int = 3) -> None:
    print(f"=== Gigamax cache coherence, {n} processors ===\n")
    spec = gigamax.spec(n)
    print(f"Verilog: {spec.verilog_lines} lines -> "
          f"BLIF-MV: {spec.blifmv_lines} lines")

    fsm = SymbolicFsm(spec.flat())
    start = time.perf_counter()
    fsm.build_transition(method="greedy")
    reach = fsm.reachable()
    print(f"reached {fsm.count_states(reach.reached)} states in "
          f"{reach.iterations} iterations ({time.perf_counter() - start:.2f}s)")
    print(f"transition relation: {fsm.bdd.size(fsm.trans)} BDD nodes\n")

    print("--- 9 CTL coherence properties ---")
    checker = ModelChecker(fsm, reached=reach.reached)
    for name, formula in spec.pif.ctl_props:
        result = checker.check(formula)
        print(f"  {'PASS' if result.holds else 'FAIL'}  {name}")

    print("\n--- language containment: single writer ---")
    lc_fsm = SymbolicFsm(spec.flat())
    lc = check_containment(lc_fsm, spec.pif.automaton("lc_single_writer"))
    print(f"  {'PASS' if lc.holds else 'FAIL'}  lc_single_writer "
          f"({lc.seconds:.2f}s)")

    print("\n--- BDD minimization with don't cares (paper §1 item 3) ---")
    _minimized, report = minimize_with_reached(fsm, reach.reached)
    print(f"  reached-state DCs: T {report.original_nodes} -> "
          f"{report.minimized_nodes} nodes "
          f"({report.reduction:.0%} reduction)")

    observable = checker.eval("cache0=own")
    partition = bisimulation_partition(fsm, [observable], within=reach.reached)
    print(f"  bisimulation quotient (observing cache0 ownership): "
          f"{fsm.count_states(reach.reached)} states -> "
          f"{quotient_size(partition)} classes")
    _minimized, report = minimize_with_equivalence(fsm, partition)
    print(f"  equivalence DCs: T {report.original_nodes} -> "
          f"{report.minimized_nodes} nodes")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
