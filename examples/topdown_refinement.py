#!/usr/bin/env python3
"""Top-down design methodology (paper §2 + the §8 research extensions).

The paper's recommended flow: specify abstractly with non-determinism,
prove properties early, then *refine* — and check that refinement never
adds behaviour, so proved properties transfer for free.  This example
walks that flow on a small memory controller:

1. abstract model: the completion signal ``done`` may rise at any time
   while the controller is busy and decay whenever it likes — pure
   non-determinism; safety properties are proved with templates from the
   property library (§8 item 8);
2. refined model: ``done`` is produced by concrete logic with a 1..2
   tick inertial delay bound (timing extension, §8 item 1);
3. the refinement checker (§8 item 3) certifies the timed model refines
   the abstract one over the observables, so the proved properties
   transfer — and we re-run them to double-check;
4. cone-of-influence abstraction (§8 item 2) strips a debug counter the
   properties never look at;
5. a bounded-response automaton checks the refined timing.

Run:  python examples/topdown_refinement.py
"""

from repro import (
    DelayBound,
    SymbolicFsm,
    bounded_response_automaton,
    check_refinement,
    compile_verilog,
    cone_of_influence,
    elaborate_delays,
    flatten,
    property_template,
)
from repro.ctl import ModelChecker, check_ctl
from repro.lc import check_containment

# done may rise only while busy, and may persist/decay freely afterwards.
ABSTRACT = """
module memctl;
  reg busy, done;
  wire start, rise;
  initial busy = 0;
  initial done = 0;
  assign start = $ND(0, 1);
  assign rise = $ND(0, 1);
  always @(posedge clk) begin
    if (!busy && start) busy <= 1;
    else if (busy && done) busy <= 0;
  end
  always @(posedge clk) done <= (busy || done) && rise;
endmodule
"""

# Concrete completion logic (to be wrapped in a delay bound) plus an
# unrelated debug counter.
REFINED = """
module memctl;
  reg busy, done;
  reg [2:0] dbg;
  wire start, finish;
  initial busy = 0;
  initial done = 0;
  initial dbg = 0;
  assign start = $ND(0, 1);
  assign finish = busy && !done;
  always @(posedge clk) begin
    if (!busy && start) busy <= 1;
    else if (busy && done) busy <= 0;
  end
  always @(posedge clk) done <= finish;
  always @(posedge clk) dbg <= dbg + 1;
endmodule
"""


def prove(model, label):
    fsm = SymbolicFsm(model)
    fsm.build_transition()
    checker = ModelChecker(fsm)
    prop = property_template("precedence", "busy", "done",
                             name="no_done_before_busy")
    mc = checker.check(prop.ctl).holds
    lc = check_containment(SymbolicFsm(model), prop.automaton).holds
    print(f"  {prop.name} on {label}: mc={'PASS' if mc else 'FAIL'} "
          f"lc={'PASS' if lc else 'FAIL'}")
    assert mc and lc
    existential = check_ctl(SymbolicFsm(model), "EF done=1")
    print(f"  completion reachable on {label}: "
          f"{'PASS' if existential.holds else 'FAIL'}")


def main() -> None:
    print("=== top-down refinement flow ===\n")
    abstract = flatten(compile_verilog(ABSTRACT))
    print("* abstract controller (non-deterministic completion)")
    prove(abstract, "abstract")

    print("\n* refined controller (timed completion + debug counter)")
    refined = flatten(compile_verilog(REFINED))
    timed = elaborate_delays(refined, {"done": DelayBound(1, 2)})
    print(f"  timing elaboration: {len(refined.latches)} latches -> "
          f"{len(timed.latches)} (pending value + tick counter per bound)")

    print("\n* refinement check over the observables busy/done")
    result = check_refinement(timed, abstract, ["busy", "done"])
    print(f"  refined <= abstract: {'HOLDS' if result.holds else 'FAILS'} "
          f"({result.iterations} fixpoint iterations)")
    assert result.holds
    print("  => universal properties proved on the abstract model "
          "transfer; verify:")
    prove(timed, "timed refinement")

    print("\n* cone-of-influence abstraction drops the debug counter")
    reduced, report = cone_of_influence(timed, ["busy", "done"])
    print(f"  kept latches: {report.kept_latches}")
    print(f"  dropped: {report.dropped_latches}")
    big = SymbolicFsm(timed)
    big.build_transition()
    small = SymbolicFsm(reduced)
    small.build_transition()
    print(f"  state space: {big.count_states(big.reachable().reached)} -> "
          f"{small.count_states(small.reachable().reached)} states")

    print("\n* bounded response on the timed model (timing property)")
    aut = bounded_response_automaton("busy", "done", within=4)
    verdict = check_containment(SymbolicFsm(timed), aut)
    print(f"  done within 4 ticks of busy: "
          f"{'PASS' if verdict.holds else 'FAIL'}")


if __name__ == "__main__":
    main()
