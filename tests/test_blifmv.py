"""Tests for the BLIF-MV parser, writer and AST validation."""

import pytest

from repro.blifmv import (
    ANY,
    BlifMvError,
    Eq,
    ValueSet,
    flatten,
    line_count,
    parse,
    write,
)

COUNTER = """
.model counter
.mv s 3
.mv s_next 3
.table s -> s_next
0 1
1 2
2 0
.latch s_next s
.reset s
0
.end
"""


class TestParser:
    def test_basic_model(self):
        design = parse(COUNTER)
        model = design.root_model()
        assert model.name == "counter"
        assert len(model.tables) == 1
        assert len(model.latches) == 1
        assert model.latches[0].reset == ["0"]

    def test_domains(self):
        design = parse(COUNTER)
        model = design.root_model()
        assert model.domain("s") == ("0", "1", "2")
        assert model.domain("undeclared") == ("0", "1")

    def test_symbolic_domain(self):
        design = parse("""
.model m
.mv st 3 idle busy done
.table st -> o
idle 0
busy 1
done 1
.end
""")
        assert design.root_model().domain("st") == ("idle", "busy", "done")

    def test_value_sets_and_any(self):
        design = parse("""
.model m
.mv a 4
.table a -> o
(0,1) 1
- 0
.end
""")
        table = design.root_model().tables[0]
        assert table.rows[0].inputs[0] == ValueSet(("0", "1"))
        assert table.rows[1].inputs[0] is ANY or table.rows[1].inputs[0] == ANY

    def test_equality_construct(self):
        design = parse("""
.model m
.mv a,b 3
.table a -> b
- =a
.end
""")
        assert design.root_model().tables[0].rows[0].outputs[0] == Eq("a")

    def test_default_row(self):
        design = parse("""
.model m
.table a b -> o
.default 0
1 1 1
.end
""")
        table = design.root_model().tables[0]
        assert table.default == ("0",)
        assert len(table.rows) == 1

    def test_multiple_outputs(self):
        design = parse("""
.model m
.table a -> x y
0 1 0
1 0 1
.end
""")
        table = design.root_model().tables[0]
        assert table.outputs == ["x", "y"]

    def test_comments_and_continuations(self):
        design = parse("""
.model m  # the model
.table a \\
  -> o
0 1  # row
1 0
.end
""")
        assert design.root_model().tables[0].inputs == ["a"]

    def test_names_compat(self):
        design = parse("""
.model m
.names a b o
1 1 1
.end
""")
        table = design.root_model().tables[0]
        assert table.inputs == ["a", "b"]
        assert table.outputs == ["o"]

    def test_subckt(self):
        design = parse("""
.model top
.subckt child u1 i=x o=y
.end
.model child
.inputs i
.outputs o
.table i -> o
0 1
1 0
.end
""")
        sub = design.models["top"].subckts[0]
        assert sub.connections == {"i": "x", "o": "y"}

    def test_multi_variable_mv(self):
        design = parse("""
.model m
.mv a,b 3
.table a -> b
- =a
.end
""")
        model = design.root_model()
        assert model.domain("a") == model.domain("b") == ("0", "1", "2")

    def test_inline_latch_reset(self):
        design = parse("""
.model m
.latch n s 1
.table s -> n
0 1
1 0
.end
""")
        assert design.root_model().latches[0].reset == ["1"]

    def test_r_shorthand(self):
        design = parse("""
.model m
.latch n s
.r 0
.table s -> n
0 1
1 0
.end
""")
        assert design.root_model().latches[0].reset == ["0"]


class TestParserErrors:
    @pytest.mark.parametrize("text,fragment", [
        (".table a -> o\n0 1\n.end", "before .model"),
        (".model m\n.mv a x\n.end", "bad domain size"),
        (".model m\n.table a -> o\n0\n.end", "row has 1 entries"),
        (".model m\n.reset s\n0\n.end", "unknown latch"),
        (".model m\n.table -> o\n(,) \n.end", "empty value set"),
        (".model m\n.frob x\n.end", "unknown directive"),
        (".model m\n.subckt child\n.end", "needs a model and an instance"),
        ("", "no .model"),
    ])
    def test_error_messages(self, text, fragment):
        with pytest.raises(BlifMvError) as err:
            parse(text)
        assert fragment in str(err.value)

    def test_validation_value_outside_domain(self):
        with pytest.raises(BlifMvError):
            parse(".model m\n.mv a 2\n.table a -> o\n5 1\n.end")

    def test_validation_reset_outside_domain(self):
        with pytest.raises(BlifMvError):
            parse(".model m\n.latch n s 7\n.table s -> n\n0 0\n1 0\n.end")

    def test_validation_multiple_drivers(self):
        with pytest.raises(BlifMvError) as err:
            parse(".model m\n.table a -> o\n0 1\n.table b -> o\n0 1\n.end")
        assert "multiple drivers" in str(err.value)

    def test_validation_eq_wrong_column(self):
        with pytest.raises(BlifMvError):
            parse(".model m\n.table a -> o\n=zz 1\n.end")

    def test_unknown_subckt_model(self):
        with pytest.raises(BlifMvError):
            parse(".model top\n.subckt nope u1 a=b\n.end").validate()


class TestWriter:
    def test_roundtrip(self):
        design = parse(COUNTER)
        text = write(design)
        again = parse(text)
        model_a = design.root_model()
        model_b = again.root_model()
        assert model_a.domains == model_b.domains
        assert len(model_a.tables) == len(model_b.tables)
        assert model_a.latches[0].reset == model_b.latches[0].reset

    def test_roundtrip_preserves_special_entries(self):
        text = """
.model m
.mv a,b 3
.table a -> b
.default 0
- =a
(0,1) 2
.end
"""
        design = parse(text)
        again = parse(write(design))
        table = again.root_model().tables[0]
        assert table.default == ("0",)
        assert table.rows[0].outputs[0] == Eq("a")
        assert table.rows[1].inputs[0] == ValueSet(("0", "1"))

    def test_line_count_positive(self):
        assert line_count(parse(COUNTER)) > 5


class TestFlatten:
    def test_two_levels(self):
        design = parse("""
.model top
.subckt leaf u1 o=x
.subckt leaf u2 o=y
.end
.model leaf
.outputs o
.mv st 2
.table st -> n
0 1
1 0
.mv n 2
.latch n st
.reset st
0
.table st -> o
- =st
.end
""")
        flat = flatten(design)
        assert not flat.subckts
        names = {latch.output for latch in flat.latches}
        assert names == {"u1.st", "u2.st"}

    def test_port_binding(self):
        design = parse("""
.model top
.subckt inverter inv i=a o=b
.table -> a
1
.end
.model inverter
.inputs i
.outputs o
.table i -> o
0 1
1 0
.end
""")
        flat = flatten(design)
        # the inverter table now reads 'a' and writes 'b'
        tables = [t for t in flat.tables if t.outputs == ["b"]]
        assert tables and tables[0].inputs == ["a"]

    def test_cycle_detection(self):
        from repro.blifmv import Design, Model, Subckt

        design = Design()
        model_a = Model(name="a", subckts=[Subckt(model="b", instance="u1")])
        model_b = Model(name="b", subckts=[Subckt(model="a", instance="u2")])
        design.add(model_a)
        design.add(model_b)
        with pytest.raises(BlifMvError) as err:
            flatten(design)
        assert "cycle" in str(err.value)

    def test_dangling_ports_get_fresh_nets(self):
        design = parse("""
.model top
.subckt leaf u1
.end
.model leaf
.inputs i
.outputs o
.table i -> o
- =i
.end
""")
        flat = flatten(design)
        table = flat.tables[0]
        assert table.inputs == ["u1.i"]
        assert table.outputs == ["u1.o"]

    def test_nested_three_levels(self):
        design = parse("""
.model top
.subckt mid m1 p=w
.end
.model mid
.outputs p
.subckt leaf l1 o=p
.end
.model leaf
.outputs o
.table -> o
1
.end
""")
        flat = flatten(design)
        assert flat.tables[0].outputs == ["w"]
