"""Model-checker tests, anchored by an explicit-state reference checker.

The reference checker enumerates the machine's states and transitions
explicitly and evaluates CTL by the textbook fixpoint definitions over
sets of concrete states; the symbolic checker must agree on every state.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import FairnessSpec, NegativeStateSet
from repro.blifmv import flatten, parse
from repro.ctl import ModelChecker, check_ctl, parse_ctl
from repro.ctl.ast import (
    AF, AG, AU, AX, And, Atom, EF, EG, EU, EX, Formula, Not, Or, TrueF,
)
from repro.network import SymbolicFsm


def build(text):
    fsm = SymbolicFsm(flatten(parse(text)))
    fsm.build_transition()
    return fsm


MACHINE = """
.model m
.mv s,n 5
.table s -> n
0 (1,2)
1 3
2 (2,4)
3 0
4 4
.latch n s
.reset s
0
.end
"""


def explicit_graph(fsm):
    """Enumerate (states, transitions) of the machine explicitly."""
    states = [s["s"] for s in fsm.states_iter(fsm.state_domain())]
    succ = {}
    for value in states:
        img = fsm.image(fsm.state_cube({"s": value}))
        succ[value] = {t["s"] for t in fsm.states_iter(img)}
    return states, succ


def explicit_eval(formula: Formula, states, succ):
    """Textbook explicit-state CTL evaluation (no fairness)."""
    if isinstance(formula, TrueF):
        return set(states)
    if isinstance(formula, Atom):
        assert formula.var == "s"
        return {s for s in states if s in formula.values}
    if isinstance(formula, Not):
        return set(states) - explicit_eval(formula.sub, states, succ)
    if isinstance(formula, And):
        return explicit_eval(formula.left, states, succ) & explicit_eval(
            formula.right, states, succ)
    if isinstance(formula, Or):
        return explicit_eval(formula.left, states, succ) | explicit_eval(
            formula.right, states, succ)
    if isinstance(formula, EX):
        target = explicit_eval(formula.sub, states, succ)
        return {s for s in states if succ[s] & target}
    if isinstance(formula, AX):
        target = explicit_eval(formula.sub, states, succ)
        return {s for s in states if succ[s] <= target}
    if isinstance(formula, EF):
        return explicit_eval(EU(TrueF(), formula.sub), states, succ)
    if isinstance(formula, AF):
        return set(states) - explicit_eval(EG(Not(formula.sub)), states, succ)
    if isinstance(formula, AG):
        return set(states) - explicit_eval(
            EU(TrueF(), Not(formula.sub)), states, succ)
    if isinstance(formula, EU):
        hold = explicit_eval(formula.left, states, succ)
        target = explicit_eval(formula.right, states, succ)
        result = set(target)
        changed = True
        while changed:
            changed = False
            for s in states:
                if s in hold and s not in result and succ[s] & result:
                    result.add(s)
                    changed = True
        return result
    if isinstance(formula, EG):
        body = explicit_eval(formula.sub, states, succ)
        result = set(body)
        changed = True
        while changed:
            changed = False
            for s in list(result):
                if not (succ[s] & result):
                    result.discard(s)
                    changed = True
        return result
    if isinstance(formula, AU):
        # A[f U g] = !(E[!g U !f&!g] | EG !g)
        nf = Not(formula.left)
        ng = Not(formula.right)
        bad = explicit_eval(EU(ng, And(nf, ng)), states, succ) | explicit_eval(
            EG(ng), states, succ)
        return set(states) - bad
    raise AssertionError(formula)


def formulas(depth=2):
    atoms = st.sampled_from(
        [Atom("s", (v,)) for v in "01234"]
        + [Atom("s", ("0", "3")), TrueF()]
    )

    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(EX, children),
            st.builds(AX, children),
            st.builds(EF, children),
            st.builds(AF, children),
            st.builds(EG, children),
            st.builds(AG, children),
            st.builds(EU, children, children),
            st.builds(AU, children, children),
        )

    return st.recursive(atoms, extend, max_leaves=6)


@settings(max_examples=60, deadline=None)
@given(formulas())
def test_symbolic_agrees_with_explicit(formula):
    fsm = build(MACHINE)
    checker = ModelChecker(fsm)
    states, succ = explicit_graph(fsm)
    expected = explicit_eval(formula, states, succ)
    sat = checker.eval(formula)
    got = {s["s"] for s in fsm.states_iter(sat)}
    assert got == expected, f"mismatch for {formula}"


class TestCheckApi:
    def test_check_string_formula(self):
        fsm = build(MACHINE)
        result = check_ctl(fsm, "EF s=4")
        assert result.holds

    def test_failing_formula_reports_init(self):
        fsm = build(MACHINE)
        result = check_ctl(fsm, "AG s=0")
        assert not result.holds
        assert result.failing_init != fsm.bdd.false

    def test_invariant_fast_path_used(self):
        fsm = build(MACHINE)
        result = check_ctl(fsm, "AG !(s=4)")  # fails: 4 reachable via 2
        assert result.used_fast_path
        assert not result.holds
        assert result.counterexample_depth is not None

    def test_invariant_fast_path_pass(self):
        fsm = build(MACHINE)
        result = check_ctl(fsm, "AG s{0,1,2,3,4}")
        assert result.used_fast_path
        assert result.holds

    def test_fast_path_agrees_with_slow_path(self):
        for formula in ("AG !(s=4)", "AG s{0,1,2,3,4}", "AG !(s=3)"):
            fsm1 = build(MACHINE)
            fsm2 = build(MACHINE)
            fast = check_ctl(fsm1, formula)
            slow = ModelChecker(fsm2).check(parse_ctl(formula),
                                            fast_invariant=False)
            assert fast.holds == slow.holds

    def test_eval_cache(self):
        fsm = build(MACHINE)
        checker = ModelChecker(fsm)
        f = parse_ctl("EF s=4")
        assert checker.eval(f) == checker.eval(f)


class TestFairCtl:
    def test_fairness_changes_af(self):
        # without fairness AF s=3 fails (can loop 2->2 or park in 4)
        fsm = build(MACHINE)
        assert not check_ctl(fsm, "AF s=1").holds
        # make staying in 2 and in 4 unfair: then from 0, both branches
        # eventually hit 1 (0->1) or leave 2 to 4... 4 is a sink, so AF s=1
        # still fails; but AF s{1,4} becomes true under the constraint.
        fsm2 = build(MACHINE)
        spec = FairnessSpec([
            NegativeStateSet(fsm2.var("s").literal("2"), label="leave2"),
        ])
        assert not check_ctl(fsm2, "AF s{1,4}").holds
        assert check_ctl(fsm2, "AF s{1,4}", fairness=spec).holds

    def test_invariant_fast_path_disabled_under_fairness(self):
        # Found by the differential fuzzer (tests/corpus/seed000013_*):
        # the AG fast path ran forward reachability even with a
        # non-trivial FairnessSpec.  State 4 is reachable but lies on no
        # fair path once parking there is unfair, so fair semantics say
        # AG !(s=4) holds while plain reachability reports a violation.
        fsm = build(MACHINE)
        spec = FairnessSpec([
            NegativeStateSet(fsm.var("s").literal("4"), label="leave4"),
        ])
        checker = ModelChecker(fsm, fairness=spec)
        fast = checker.check("AG !(s=4)")
        slow = checker.check("AG !(s=4)", fast_invariant=False)
        assert not fast.used_fast_path
        assert fast.holds and slow.holds
        # Without fairness the fast path still applies and still fails.
        plain = ModelChecker(build(MACHINE)).check("AG !(s=4)")
        assert plain.used_fast_path and not plain.holds

    def test_fair_eg_excludes_unfair_lassos(self):
        fsm = build(MACHINE)
        spec = FairnessSpec([
            NegativeStateSet(fsm.var("s").literal("4"), label="leave4"),
        ])
        checker = ModelChecker(fsm, fairness=spec)
        # EG s=4 is only witnessed by parking at 4, which is now unfair.
        assert checker.eval(parse_ctl("EG s=4")) == fsm.bdd.false

    def test_fair_states_subset_of_space(self):
        fsm = build(MACHINE)
        spec = FairnessSpec([
            NegativeStateSet(fsm.var("s").literal("4"), label="leave4"),
        ])
        checker = ModelChecker(fsm, fairness=spec)
        fair = checker.fair_states()
        got = {s["s"] for s in fsm.states_iter(fair)}
        # state 4 is a sink: no fair path from it
        assert "4" not in got
        assert got == {"0", "1", "2", "3"}


class TestDontCares:
    def test_dc_option_agrees_on_init(self):
        for formula in ("AG !(s=4)", "EF s=3", "AG EF s=0", "A[ s{0,1,2,3} U s=3 ]"):
            plain = check_ctl(build(MACHINE), formula)
            with_dc = ModelChecker(build(MACHINE), use_dc=True).check(
                parse_ctl(formula), fast_invariant=False)
            assert plain.holds == with_dc.holds, formula


class TestWireAtoms:
    WIRED = """
.model m
.mv s,n 2
.table s -> n
- =s
.table s -> w
0 0
1 (0,1)
.mv w 2
.latch n s
.reset s
0 1
.end
"""

    def test_wire_atom_projects_existentially(self):
        fsm = build(self.WIRED)
        checker = ModelChecker(fsm)
        may_w = checker.eval(parse_ctl("w=1"))
        got = {s["s"] for s in fsm.states_iter(may_w)}
        assert got == {"1"}  # only s=1 can drive w=1

    def test_negated_wire_atom_is_must(self):
        fsm = build(self.WIRED)
        checker = ModelChecker(fsm)
        never_w = checker.eval(parse_ctl("!w=1"))
        got = {s["s"] for s in fsm.states_iter(never_w)}
        assert got == {"0"}
