"""Parallel execution changes *nothing* about the answers.

The pool's contract (docs/parallel.md) is that fanning independent
jobs across worker processes affects only the wall-clock schedule:
``hsis fuzz --jobs 4`` produces the same verdicts, the same corpus
files, and the same merged stat totals as ``--jobs 1``; the benchmark
runner's ``results.json`` payload is byte-identical at any job count;
multi-property checking returns the serial verdicts.  These tests pin
that contract down.
"""

import json
import multiprocessing
import re
import shutil
from pathlib import Path

import pytest

from repro.blifmv import flatten, parse as parse_blifmv
from repro.cli import HsisShell
from repro.oracle import run_sweep
from repro.oracle.diff import Divergence
from repro.parallel import check_properties, run_sweep_parallel, shard_range
from repro.perf import EngineStats
from repro.pif import parse_pif

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"

#: Acceptance range from ISSUE 3: a 200-seed sweep, parallel == serial.
ACCEPTANCE_TRIALS = 200

BLIFMV = """
.model counter
.mv s,n 3
.table s -> n
0 1
1 2
2 0
.latch n s
.reset s
0
.end
"""

PIF = """
ctl can_reach_two :: EF s=2
ctl never_stuck :: AG EX TRUE
ctl bogus :: AG s=0
"""


def phase_calls(stats: EngineStats) -> dict:
    """Scheduling-independent slice of a stats collector: call counts
    and counters (seconds are wall time and legitimately differ)."""
    return {
        "calls": {name: stat.calls for name, stat in stats.phases.items()},
        "counters": dict(stats.counters),
    }


def summary_without_timing(sweep) -> str:
    return re.sub(r"\d+\.\d+s", "_s", sweep.summary())


class TestShardRange:
    def test_partition_is_exact_and_ordered(self):
        chunks = shard_range(7, 23, 5)
        assert sum(count for _, count in chunks) == 23
        assert chunks[0][0] == 7
        rebuilt = [
            seed
            for start, count in chunks
            for seed in range(start, start + count)
        ]
        assert rebuilt == list(range(7, 30))

    def test_more_shards_than_items_collapses(self):
        assert shard_range(0, 3, 16) == [(0, 1), (1, 1), (2, 1)]
        assert shard_range(5, 0, 4) == []


class TestFuzzSweepDeterminism:
    def test_parallel_sweep_matches_serial_over_acceptance_range(self):
        serial_stats, parallel_stats = EngineStats(), EngineStats()
        serial = run_sweep(ACCEPTANCE_TRIALS, seed0=0, stats=serial_stats)
        parallel = run_sweep_parallel(
            ACCEPTANCE_TRIALS, seed0=0, jobs=4, stats=parallel_stats
        )
        assert serial.ok and parallel.ok, (
            serial.summary() + "\n" + parallel.summary()
        )
        assert [r.seed for r in parallel.reports] == [
            r.seed for r in serial.reports
        ]
        assert [r.ok for r in parallel.reports] == [
            r.ok for r in serial.reports
        ]
        assert [str(d) for d in parallel.divergences] == [
            str(d) for d in serial.divergences
        ]
        assert phase_calls(parallel_stats) == phase_calls(serial_stats)
        assert summary_without_timing(parallel) == summary_without_timing(
            serial
        )

    def test_nonzero_seed0_shards_the_right_seeds(self):
        parallel = run_sweep_parallel(10, seed0=90, jobs=3)
        assert [r.seed for r in parallel.reports] == list(range(90, 100))

    @pytest.mark.skipif(
        not HAVE_FORK, reason="monkeypatching workers requires fork"
    )
    def test_divergences_and_corpus_files_match_serial(
        self, tmp_path, monkeypatch
    ):
        """Inject a deterministic per-seed divergence and compare the
        corpus directories the two modes produce, byte for byte."""
        import repro.oracle.diff as diff

        def fake_bddops_trial(rng, seed, auto_reorder=None, batch_apply=None):
            if seed % 7 == 3:
                return [Divergence("bddops", seed, "injected for testing")]
            return []

        monkeypatch.setattr(diff, "bddops_trial", fake_bddops_trial)
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_sweep(40, seed0=0, corpus_dir=str(serial_dir))
        parallel = run_sweep_parallel(
            40, seed0=0, jobs=4, corpus_dir=str(parallel_dir)
        )
        assert not serial.ok and not parallel.ok
        assert [str(d) for d in parallel.divergences] == [
            str(d) for d in serial.divergences
        ]
        serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
        parallel_files = sorted(p.name for p in parallel_dir.glob("*.json"))
        assert serial_files == parallel_files and serial_files
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes()
        assert [Path(p).name for p in parallel.corpus_written] == [
            Path(p).name for p in serial.corpus_written
        ]


class TestBenchRunnerDeterminism:
    @pytest.fixture
    def suite(self, tmp_path):
        """A miniature bench suite recording deterministic rows through
        the real ``benchmarks/conftest.py`` collector."""
        suite_dir = tmp_path / "suite"
        suite_dir.mkdir()
        shutil.copy(BENCHMARKS / "conftest.py", suite_dir / "conftest.py")
        (suite_dir / "bench_alpha.py").write_text(
            "def test_alpha(results_collector):\n"
            "    results_collector('demo', 'alpha', {'value': 1, 'k': 10})\n"
        )
        (suite_dir / "bench_beta.py").write_text(
            "def test_beta(results_collector):\n"
            "    results_collector('demo', 'beta', {'value': 2})\n"
            "def test_beta_more(results_collector):\n"
            "    results_collector('other', 'beta', {'n': 3})\n"
        )
        return suite_dir

    def test_results_payload_identical_at_any_job_count(self, suite, tmp_path):
        from repro.parallel.bench import run_benchmarks

        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        serial = run_benchmarks(
            suite_dir=str(suite), jobs=1, results_path=str(serial_path),
            fresh=True,
        )
        parallel = run_benchmarks(
            suite_dir=str(suite), jobs=2, results_path=str(parallel_path),
            fresh=True,
        )
        assert serial.ok and parallel.ok, (serial, parallel)
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        payload = json.loads(serial_path.read_text())
        assert payload == {
            "demo": {"alpha": {"value": 1, "k": 10}, "beta": {"value": 2}},
            "other": {"beta": {"n": 3}},
        }

    def test_history_accumulates_across_runs(self, suite, tmp_path):
        from repro.parallel.bench import run_benchmarks

        results = tmp_path / "results.json"
        results.write_text(json.dumps({"demo": {"old": {"value": 9}}}))
        run_benchmarks(
            suite_dir=str(suite), jobs=2, results_path=str(results)
        )
        payload = json.loads(results.read_text())
        assert payload["demo"]["old"] == {"value": 9}
        assert payload["demo"]["alpha"] == {"value": 1, "k": 10}


class TestMultiPropertyDeterminism:
    def test_parallel_verdicts_match_serial(self):
        flat = flatten(parse_blifmv(BLIFMV))
        pif = parse_pif(PIF)
        serial = check_properties(flat, pif.ctl_props, pif.fairness, jobs=1)
        parallel = check_properties(flat, pif.ctl_props, pif.fairness, jobs=2)
        assert [(v.name, v.holds) for v in serial] == [
            ("can_reach_two", True),
            ("never_stuck", True),
            ("bogus", False),
        ]
        assert [(v.name, v.holds, v.status) for v in parallel] == [
            (v.name, v.holds, v.status) for v in serial
        ]

    def test_shell_mc_jobs_matches_serial_output(self, tmp_path):
        design = tmp_path / "counter.mv"
        design.write_text(BLIFMV)
        props = tmp_path / "props.pif"
        props.write_text(PIF)

        def run(mc_line: str) -> str:
            shell = HsisShell()
            shell.execute(f"read_blif_mv {design}")
            shell.execute(f"read_pif {props}")
            return re.sub(r"\d+\.\d+s", "_s", shell.execute(mc_line))

        assert run("mc --jobs 2") == run("mc")

    def test_shell_mc_rejects_bad_jobs(self, tmp_path):
        from repro.cli import CliError

        design = tmp_path / "counter.mv"
        design.write_text(BLIFMV)
        shell = HsisShell()
        shell.execute(f"read_blif_mv {design}")
        with pytest.raises(CliError):
            shell.execute("mc --jobs 0")
        with pytest.raises(CliError):
            shell.execute("mc --jobs")
