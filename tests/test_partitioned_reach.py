"""Partitioned reachability: equivalence, schedule reuse, GC pacing."""

import pytest

import repro.network.fsm as fsm_mod
from repro.models import get_spec
from repro.models.gallery import GALLERY
from repro.network import SymbolicFsm
from repro.network.quantify import (
    Conjunct,
    execute_schedule,
    make_conjuncts,
    multiply_and_quantify,
    plan_schedule,
)
from repro.trace import Tracer


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_partitioned_matches_monolithic(name):
    """Same reached set, same onion rings, without ever building T."""
    flat = get_spec(name).flat()
    mono = SymbolicFsm(flat)
    mono.build_transition()
    expected = mono.reachable()

    part = SymbolicFsm(flat)
    got = part.reachable(partitioned=True)
    assert part.trans is None, "partitioned reach must not build T"
    assert got.iterations == expected.iterations
    assert got.converged == expected.converged
    assert len(got.rings) == len(expected.rings)
    # Same manager layout (same model, same encode), so node handles of
    # equal functions are directly comparable across the two runs.
    assert part.count_states(got.reached) == mono.count_states(expected.reached)
    assert [part.count_states(r) for r in got.rings] == [
        mono.count_states(r) for r in expected.rings
    ]


@pytest.mark.parametrize("name", ["traffic", "railroad"])
def test_partitioned_schedule_planned_once(name):
    """The greedy scheduler runs at most once per frozen conjunct pool."""
    flat = get_spec(name).flat()
    tracer = Tracer()
    fsm = SymbolicFsm(flat, tracer=tracer)
    result = fsm.reachable(partitioned=True)
    assert result.iterations > 1
    counters = fsm.stats.counters
    assert counters["partitioned_plans_built"] == 1
    assert counters["partitioned_images"] == result.iterations
    # The trace shows the same: one plan event, one image event per step.
    plans = [e for e in tracer.events if e["name"] == "fsm.partition_plan"]
    images = [e for e in tracer.events if e["name"] == "fsm.image_partitioned"]
    assert len(plans) == 1
    assert len(images) == result.iterations


def test_partition_plan_invalidated_by_pool_changes():
    flat = get_spec("traffic").flat()
    fsm = SymbolicFsm(flat)
    first = fsm.partition_schedule()
    assert fsm.partition_schedule() is first  # cached
    extra = fsm.bdd.true
    fsm.add_conjunct(extra, "extra")
    second = fsm.partition_schedule()
    assert second is not first
    assert second.inputs == first.inputs + 1
    assert fsm.stats.counters["partitioned_plans_built"] == 2


def test_plan_schedule_matches_greedy_result():
    """Replaying a support-planned schedule equals direct greedy runs."""
    from repro.bdd.manager import BDD

    bdd = BDD()
    v = [bdd.add_var(f"v{i}") for i in range(6)]
    f = [
        bdd.or_(bdd.var(v[0]), bdd.var(v[1])),
        bdd.and_(bdd.var(v[1]), bdd.not_(bdd.var(v[2]))),
        bdd.xor(bdd.var(v[2]), bdd.var(v[3])),
        bdd.or_(bdd.var(v[3]), bdd.and_(bdd.var(v[4]), bdd.var(v[5]))),
    ]
    conjuncts = make_conjuncts(bdd, [(node, f"c{i}") for i, node in enumerate(f)])
    quantify = {v[1], v[2], v[3]}
    direct = multiply_and_quantify(bdd, conjuncts, quantify, method="greedy")
    plan = plan_schedule([c.support for c in conjuncts], quantify)
    replayed = execute_schedule(bdd, [c.node for c in conjuncts], plan)
    assert replayed.node == direct.node
    # The plan replays identically on *different* conjunct values with
    # the same supports (the partitioned-image use case).
    g = [bdd.and_(node, bdd.or_(bdd.var(v[0]), bdd.var(v[5]))) for node in f]
    replayed2 = execute_schedule(bdd, g, plan)
    g_conj = [
        Conjunct(node=node, support=c.support, label=c.label)
        for node, c in zip(g, conjuncts)
    ]
    direct2 = multiply_and_quantify(bdd, g_conj, quantify, method="greedy")
    assert replayed2.node == direct2.node


def test_execute_schedule_rejects_wrong_arity():
    plan = plan_schedule([frozenset({0}), frozenset({0, 1})], {0})
    from repro.bdd.manager import BDD

    bdd = BDD()
    bdd.add_var("a")
    with pytest.raises(ValueError):
        execute_schedule(bdd, [bdd.true], plan)


def test_hard_gc_rearms_instead_of_thrashing(monkeypatch):
    """A live set above the threshold must not trigger a sweep per ring."""
    flat = get_spec("elevator").flat()
    fsm = SymbolicFsm(flat)
    fsm.build_transition()
    # Force the hard-GC path from the first iteration: every node count
    # is above the threshold, which used to mean one full sweep per ring.
    monkeypatch.setattr(fsm_mod, "GC_NODE_THRESHOLD", 1)
    result = fsm.reachable()
    assert result.converged
    sweeps = fsm.stats.counters.get("reach_hard_gc", 0)
    assert 1 <= sweeps < result.iterations, (
        f"{sweeps} hard sweeps over {result.iterations} iterations"
    )


def test_hard_gc_still_fires_when_table_regrows(monkeypatch):
    """Re-arming must not disable hard GC outright."""
    flat = get_spec("traffic").flat()
    fsm = SymbolicFsm(flat)
    fsm.build_transition()
    monkeypatch.setattr(fsm_mod, "GC_NODE_THRESHOLD", 1)
    fsm.reachable()
    first = fsm.stats.counters.get("reach_hard_gc", 0)
    assert first >= 1
    # A fresh traversal re-arms from scratch and sweeps again.
    fsm.reachable()
    assert fsm.stats.counters.get("reach_hard_gc", 0) > first
