"""Property-based tests for BLIF-MV: random models round-trip through the
writer/parser and encode to identical machines."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.blifmv import Model, Row, Table, Latch, flatten, parse, write
from repro.blifmv.ast import ANY, Design, ValueSet
from repro.network import SymbolicFsm


@st.composite
def models(draw):
    """A random closed one-or-two latch model with a random table."""
    domain_size = draw(st.integers(min_value=2, max_value=4))
    domain = tuple(str(i) for i in range(domain_size))
    n_latches = draw(st.integers(min_value=1, max_value=2))
    model = Model(name="rand")
    for i in range(n_latches):
        state, nxt = f"s{i}", f"n{i}"
        model.domains[state] = domain
        model.domains[nxt] = domain
        rows = []
        for value in domain:
            targets = draw(
                st.lists(st.sampled_from(domain), min_size=1, max_size=2,
                         unique=True)
            )
            entry = targets[0] if len(targets) == 1 else ValueSet(tuple(targets))
            rows.append(Row(inputs=(value,), outputs=(entry,)))
        model.tables.append(Table(inputs=[state], outputs=[nxt], rows=rows))
        reset = draw(st.sampled_from(domain))
        model.latches.append(Latch(input=nxt, output=state, reset=[reset]))
    model.validate()
    return model


def machine_signature(model: Model):
    """(#reached states, sorted reached valuations) — machine semantics."""
    fsm = SymbolicFsm(model)
    fsm.build_transition()
    reached = fsm.reachable().reached
    states = sorted(
        tuple(sorted(s.items())) for s in fsm.states_iter(reached)
    )
    return fsm.count_states(reached), states


@settings(max_examples=30, deadline=None)
@given(models())
def test_writer_parser_roundtrip_preserves_semantics(model):
    design = Design()
    design.add(model)
    text = write(design)
    reparsed = flatten(parse(text))
    assert machine_signature(model) == machine_signature(reparsed)


@settings(max_examples=30, deadline=None)
@given(models())
def test_reachable_states_closed_under_image(model):
    fsm = SymbolicFsm(model)
    fsm.build_transition()
    reached = fsm.reachable().reached
    image = fsm.image(reached)
    assert fsm.bdd.diff(image, reached) == fsm.bdd.false


@settings(max_examples=20, deadline=None)
@given(models())
def test_partitioned_reachability_agrees(model):
    fsm1 = SymbolicFsm(model)
    full = fsm1.reachable(partitioned=True).reached
    fsm2 = SymbolicFsm(model)
    fsm2.build_transition()
    mono = fsm2.reachable().reached
    assert fsm1.count_states(full) == fsm2.count_states(mono)
