"""Tests for refinement checking (hierarchical verification, §8 item 3)."""

import pytest

from repro.blifmv import BlifMvError, flatten, parse
from repro.refine import check_refinement

FREE_TOGGLE = """
.model free
.mv s,n 2
.table s -> n
- (0,1)
.table s -> out
- =s
.mv out 2
.latch n s
.reset s
0
.end
"""

ALTERNATOR = """
.model alt
.mv s,n 2
.table s -> n
0 1
1 0
.table s -> out
- =s
.mv out 2
.latch n s
.reset s
0
.end
"""

STUCK_LOW = """
.model low
.mv s,n 2
.table s -> n
- 0
.table s -> out
- =s
.mv out 2
.latch n s
.reset s
0
.end
"""

# Same observable language as ALTERNATOR but with an extra internal latch.
ALTERNATOR_2LATCH = """
.model alt2
.mv s,n 2
.mv t,tn 2
.table s -> n
0 1
1 0
.table s -> tn
- =s
.table s -> out
- =s
.mv out 2
.latch n s
.reset s
0
.latch tn t
.reset t
0
.end
"""


def m(text):
    return flatten(parse(text))


class TestRefinementVerdicts:
    def test_determinization_is_refinement(self):
        result = check_refinement(m(ALTERNATOR), m(FREE_TOGGLE), ["out"])
        assert result.holds

    def test_stuck_refines_free(self):
        result = check_refinement(m(STUCK_LOW), m(FREE_TOGGLE), ["out"])
        assert result.holds

    def test_added_behaviour_rejected(self):
        result = check_refinement(m(FREE_TOGGLE), m(ALTERNATOR), ["out"])
        assert not result.holds
        assert result.unmatched_initial is not None

    def test_stuck_does_not_refine_alternator(self):
        result = check_refinement(m(STUCK_LOW), m(ALTERNATOR), ["out"])
        assert not result.holds

    def test_reflexive(self):
        result = check_refinement(m(ALTERNATOR), m(ALTERNATOR), ["out"])
        assert result.holds

    def test_structural_mismatch_is_fine(self):
        # different latch counts, same observable behaviour
        result = check_refinement(m(ALTERNATOR_2LATCH), m(ALTERNATOR), ["out"])
        assert result.holds
        result = check_refinement(m(ALTERNATOR), m(ALTERNATOR_2LATCH), ["out"])
        assert result.holds


class TestErrors:
    def test_missing_observable(self):
        with pytest.raises(BlifMvError):
            check_refinement(m(ALTERNATOR), m(FREE_TOGGLE), ["zz"])

    def test_domain_mismatch(self):
        other = flatten(parse("""
.model o
.mv s,n 2
.mv out 3
.table s -> n
- =s
.table s -> out
0 0
1 1
.latch n s
.reset s
0
.end
"""))
        with pytest.raises(BlifMvError):
            check_refinement(m(ALTERNATOR), other, ["out"])

    def test_hierarchy_rejected(self):
        design = parse("""
.model top
.subckt leaf u1
.end
.model leaf
.table a -> b
0 1
1 0
.end
""")
        with pytest.raises(BlifMvError):
            check_refinement(design.root_model(), m(ALTERNATOR), ["out"])


class TestRelationShape:
    def test_relation_respects_observables(self):
        result = check_refinement(m(ALTERNATOR), m(FREE_TOGGLE), ["out"])
        fsm = result.fsm
        bdd = fsm.bdd
        # (impl s=0, spec s=1) differ on out and cannot be related
        impl0 = fsm.var("impl.s").literal("0")
        spec1 = fsm.var("spec.s").literal("1")
        assert bdd.and_(bdd.and_(result.relation, impl0), spec1) == bdd.false
