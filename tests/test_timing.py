"""Tests for timing verification: delay elaboration + bounded response."""

import pytest

from repro.blifmv import BlifMvError, flatten, parse
from repro.ctl import ModelChecker, check_ctl
from repro.lc import check_containment
from repro.network import SymbolicFsm
from repro.network.timing import (
    DelayBound,
    bounded_response_automaton,
    elaborate_delays,
)

# req pulses once; ack follows req combinationally through a delayed latch.
PULSE = """
.model pulse
.mv req,reqn 2
.mv ack,ackn 2
.table req -> reqn
- 1
.table req -> ackn
- =req
.latch reqn req
.reset req
0
.latch ackn ack
.reset ack
0
.end
"""


def timed_machine(low, high):
    model = flatten(parse(PULSE))
    timed = elaborate_delays(model, {"ack": DelayBound(low, high)})
    fsm = SymbolicFsm(timed)
    fsm.build_transition()
    return fsm


class TestDelayBounds:
    def test_bounds_validation(self):
        with pytest.raises(BlifMvError):
            DelayBound(0, 2)
        with pytest.raises(BlifMvError):
            DelayBound(3, 2)

    def test_unknown_latch(self):
        model = flatten(parse(PULSE))
        with pytest.raises(BlifMvError):
            elaborate_delays(model, {"zz": DelayBound(1, 2)})

    def test_untimed_latches_untouched(self):
        model = flatten(parse(PULSE))
        timed = elaborate_delays(model, {"ack": DelayBound(1, 2)})
        req_latches = [l for l in timed.latches if l.output == "req"]
        assert req_latches and req_latches[0].input == "reqn"


class TestDelaySemantics:
    def test_delay_one_rise_depth(self):
        # req rises at depth 1, the change is armed at depth 2 (inertial
        # detection tick), and a [1,1] delay commits at depth 3 exactly.
        fsm = timed_machine(1, 1)
        reach = fsm.reachable()
        depths = [
            depth for depth, ring in enumerate(reach.rings)
            if fsm.bdd.and_(ring, fsm.var("ack").literal("1")) != fsm.bdd.false
        ]
        assert depths and min(depths) == 3

    def test_ack_rise_window(self):
        # delay [1,3]: the earliest commit shows at depth 3; the forced
        # commit at ticks=3 keeps ack low in some run through depth 4.
        fsm = timed_machine(1, 3)
        reach = fsm.reachable()
        depths = [
            depth for depth, ring in enumerate(reach.rings)
            if fsm.bdd.and_(ring, fsm.var("ack").literal("1")) != fsm.bdd.false
        ]
        assert min(depths) == 3
        low_depths = [
            depth for depth, ring in enumerate(reach.rings)
            if fsm.bdd.and_(ring, fsm.var("ack").literal("0")) != fsm.bdd.false
        ]
        assert max(low_depths) == 4

    def test_eventually_commits(self):
        fsm = timed_machine(2, 4)
        result = check_ctl(fsm, "AF ack=1")
        assert result.holds  # the upper bound forces the commit


class TestBoundedResponse:
    def test_automaton_shape(self):
        aut = bounded_response_automaton("req", "ack", within=3)
        assert set(aut.states) == {"IDLE", "W1", "W2", "W3", "LATE"}
        assert aut.rabin_pairs

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            bounded_response_automaton("req", "ack", within=0)

    def test_tight_bound_passes(self):
        # delay [1,2] means ack within 3 ticks of the (persistent) req
        model = flatten(parse(PULSE))
        timed = elaborate_delays(model, {"ack": DelayBound(1, 2)})
        aut = bounded_response_automaton("req", "ack", within=3)
        result = check_containment(SymbolicFsm(timed), aut)
        assert result.holds

    def test_too_tight_bound_fails(self):
        model = flatten(parse(PULSE))
        timed = elaborate_delays(model, {"ack": DelayBound(3, 5)})
        aut = bounded_response_automaton("req", "ack", within=2)
        result = check_containment(SymbolicFsm(timed), aut)
        assert not result.holds

    def test_verdict_boundary_exact(self):
        # delay exactly [2,2]: ack comes 3 ticks after req first seen by
        # the monitor; bound 3 passes, bound 2 fails
        model = flatten(parse(PULSE))
        for bound, expected in ((3, True), (2, False)):
            timed = elaborate_delays(model, {"ack": DelayBound(2, 2)})
            aut = bounded_response_automaton("req", "ack", within=bound)
            result = check_containment(SymbolicFsm(timed), aut)
            assert result.holds is expected, (bound, expected)
