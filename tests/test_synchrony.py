"""Tests for synchrony trees (extended c/s, paper §4)."""

import pytest

from repro.blifmv import flatten, parse, write
from repro.blifmv.synchrony import (
    SynchronyError,
    SyncLeaf,
    SyncNode,
    enumerate_update_sets,
    parse_synchrony,
    validate_tree,
)
from repro.network import SymbolicFsm

TWO_TOGGLES = """
.model async2
.mv a,an 2
.mv b,bn 2
.table a -> an
0 1
1 0
.table b -> bn
0 1
1 0
.latch an a
.reset a
0
.latch bn b
.reset b
0
{synchrony}
.end
"""


def machine(synchrony: str):
    text = TWO_TOGGLES.format(synchrony=synchrony)
    fsm = SymbolicFsm(flatten(parse(text)))
    fsm.build_transition()
    return fsm


def image_pairs(fsm, a, b):
    img = fsm.image(fsm.state_cube({"a": a, "b": b}))
    return {(s["a"], s["b"]) for s in fsm.states_iter(img)}


class TestParsing:
    def test_leaf(self):
        assert parse_synchrony("x") == SyncLeaf("x")

    def test_nested(self):
        tree = parse_synchrony("(A (S a b) c)")
        assert isinstance(tree, SyncNode)
        assert tree.label == "A"
        assert tree.children[0] == SyncNode("S", (SyncLeaf("a"), SyncLeaf("b")))

    @pytest.mark.parametrize("text", [
        "(A", "(A a))", "(X a b)", "()", "", "(A a a)",
    ])
    def test_malformed(self, text):
        with pytest.raises(SynchronyError):
            parse_synchrony(text)

    def test_roundtrip_sexpr(self):
        tree = parse_synchrony("(A (S a b) (S c d))")
        assert parse_synchrony(tree.to_sexpr()) == tree

    def test_validate_unknown_latch(self):
        tree = parse_synchrony("(A a zz)")
        with pytest.raises(SynchronyError):
            validate_tree(tree, {"a", "b"})


class TestUpdateSets:
    def test_async_chooses_one(self):
        tree = parse_synchrony("(A a b)")
        assert enumerate_update_sets(tree) == [{"a"}, {"b"}]

    def test_sync_takes_all(self):
        tree = parse_synchrony("(S a b)")
        assert enumerate_update_sets(tree) == [{"a", "b"}]

    def test_mixed(self):
        tree = parse_synchrony("(S (A a b) c)")
        sets = enumerate_update_sets(tree)
        assert {frozenset(s) for s in sets} == {
            frozenset({"a", "c"}), frozenset({"b", "c"})}


class TestSemantics:
    def test_async_interleaving(self):
        fsm = machine(".synchrony (A a b)")
        assert image_pairs(fsm, "0", "0") == {("1", "0"), ("0", "1")}

    def test_sync_default(self):
        fsm = machine("")
        assert image_pairs(fsm, "0", "0") == {("1", "1")}

    def test_explicit_sync_tree_matches_default(self):
        fsm = machine(".synchrony (S a b)")
        assert image_pairs(fsm, "0", "0") == {("1", "1")}

    def test_partial_tree_keeps_others_synchronous(self):
        # only 'a' in the tree: 'b' updates every tick
        fsm = machine(".synchrony (A a)")
        assert image_pairs(fsm, "0", "0") == {("1", "1")}

    def test_async_reachability(self):
        fsm = machine(".synchrony (A a b)")
        reached = fsm.reachable().reached
        assert fsm.count_states(reached) == 4

    def test_hold_semantics_in_trace(self):
        fsm = machine(".synchrony (A a b)")
        img = image_pairs(fsm, "1", "0")
        # a toggles (0,0) or b toggles (1,1); never both
        assert img == {("0", "0"), ("1", "1")}

    def test_three_way_selector(self):
        text = """
.model async3
.mv a,an 2
.mv b,bn 2
.mv c,cn 2
.table a -> an
- 1
.table b -> bn
- 1
.table c -> cn
- 1
.latch an a
.reset a
0
.latch bn b
.reset b
0
.latch cn c
.reset c
0
.synchrony (A a b c)
.end
"""
        fsm = SymbolicFsm(flatten(parse(text)))
        fsm.build_transition()
        img = fsm.image(fsm.state_cube({"a": "0", "b": "0", "c": "0"}))
        got = {tuple(sorted(s.items())) for s in fsm.states_iter(img)}
        assert len(got) == 3  # exactly one of the three moved


class TestHierarchy:
    def test_writer_roundtrip(self):
        design = parse(TWO_TOGGLES.format(synchrony=".synchrony (A a b)"))
        again = parse(write(design))
        assert again.root_model().synchrony is not None

    def test_flatten_preserves_tree(self):
        model = flatten(parse(TWO_TOGGLES.format(synchrony=".synchrony (A a b)")))
        assert model.synchrony is not None
        assert set(model.synchrony.leaves()) == {"a", "b"}

    def test_duplicate_synchrony_rejected(self):
        with pytest.raises(Exception):
            parse(TWO_TOGGLES.format(
                synchrony=".synchrony (A a b)\n.synchrony (A a b)"))
