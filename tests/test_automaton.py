"""Tests for property automata: guards, determinism, completion, attach."""

import pytest

from repro.automata import (
    Automaton,
    AutomatonError,
    TRUE_GUARD,
    atom,
    attach,
    complement_rabin,
    BuchiEdge,
    BuchiState,
    FairnessSpec,
    NegativeStateSet,
    RabinPair,
    StreettPair,
)
from repro.blifmv import flatten, parse
from repro.network import SymbolicFsm

TOGGLE = """
.model toggle
.mv s,n 2
.table s -> n
0 1
1 0
.table s -> out
- =s
.mv out 2
.latch n s
.reset s
0
.end
"""


def fresh_fsm():
    return SymbolicFsm(flatten(parse(TOGGLE)))


class TestGuards:
    def test_atom_single(self):
        fsm = fresh_fsm()
        g = atom("out", "1")
        node = g.to_bdd(fsm)
        assert node == fsm.var("out").literal("1")

    def test_atom_set(self):
        fsm = fresh_fsm()
        g = atom("s", ["0", "1"])
        assert g.to_bdd(fsm) == fsm.var("s").domain_constraint

    def test_boolean_algebra(self):
        fsm = fresh_fsm()
        a = atom("out", "1")
        b = atom("s", "0")
        assert (a & b).to_bdd(fsm) == fsm.bdd.and_(a.to_bdd(fsm), b.to_bdd(fsm))
        assert (a | b).to_bdd(fsm) == fsm.bdd.or_(a.to_bdd(fsm), b.to_bdd(fsm))
        assert (~a).to_bdd(fsm) == fsm.bdd.not_(a.to_bdd(fsm))

    def test_true_guard(self):
        fsm = fresh_fsm()
        assert TRUE_GUARD.to_bdd(fsm) == fsm.bdd.true


class TestAutomatonStructure:
    def test_unknown_state_rejected(self):
        with pytest.raises(AutomatonError):
            Automaton(name="a", states=["A"], initial=["B"])
        aut = Automaton(name="a", states=["A"], initial=["A"])
        with pytest.raises(AutomatonError):
            aut.add_edge("A", "Z")

    def test_duplicate_states_rejected(self):
        with pytest.raises(AutomatonError):
            Automaton(name="a", states=["A", "A"], initial=["A"])

    def test_edges_within_and_leaving(self):
        aut = Automaton(name="a", states=["A", "B"], initial=["A"])
        aut.add_edge("A", "A").add_edge("A", "B").add_edge("B", "B")
        assert aut.edges_within(["A"]) == frozenset({("A", "A")})
        assert aut.edges_leaving(["A"]) == frozenset({("A", "B"), ("B", "B")})

    def test_invariance_acceptance(self):
        aut = Automaton(name="a", states=["A", "B"], initial=["A"])
        aut.add_edge("A", "A").add_edge("A", "B").add_edge("B", "B")
        aut.accept_invariance(["A"])
        fin, inf = aut.rabin_pairs[0]
        assert fin == frozenset({("A", "B"), ("B", "B")})
        assert inf == frozenset({("A", "A")})


class TestDeterminismAndCompletion:
    def test_overlapping_guards_detected(self):
        fsm = fresh_fsm()
        aut = Automaton(name="a", states=["A", "B", "C"], initial=["A"])
        aut.add_edge("A", "B", atom("out", "1"))
        aut.add_edge("A", "C", TRUE_GUARD)  # overlaps with out=1
        problems = aut.check_deterministic(fsm)
        assert problems and "overlap" in problems[0]

    def test_disjoint_guards_ok(self):
        fsm = fresh_fsm()
        aut = Automaton(name="a", states=["A", "B"], initial=["A"])
        aut.add_edge("A", "B", atom("out", "1"))
        aut.add_edge("A", "A", ~atom("out", "1"))
        aut.add_edge("B", "B")
        assert aut.check_deterministic(fsm) == []

    def test_incomplete_state_detected(self):
        fsm = fresh_fsm()
        aut = Automaton(name="a", states=["A"], initial=["A"])
        aut.add_edge("A", "A", atom("out", "1"))
        problems = aut.check_complete(fsm)
        assert problems and "incomplete" in problems[0]

    def test_completion_adds_trap(self):
        aut = Automaton(name="a", states=["A"], initial=["A"])
        aut.add_edge("A", "A", atom("out", "1"))
        done = aut.completed()
        assert "_trap" in done.states
        # trap self-loops and catches the complement
        assert any(e.src == "_trap" and e.dst == "_trap" for e in done.edges)

    def test_completion_name_clash(self):
        aut = Automaton(name="a", states=["_trap"], initial=["_trap"])
        with pytest.raises(AutomatonError):
            aut.completed()


class TestAttach:
    def _mutex_automaton(self):
        aut = Automaton(name="watch", states=["A", "B"], initial=["A"])
        aut.add_edge("A", "A", ~atom("out", "1"))
        aut.add_edge("A", "B", atom("out", "1"))
        aut.add_edge("B", "B")
        aut.accept_invariance(["A"])
        return aut

    def test_attach_adds_state_variable(self):
        fsm = fresh_fsm()
        monitor = attach(fsm, self._mutex_automaton())
        fsm.build_transition()
        state = fsm.pick_state(fsm.init)
        assert state["watch.state"] == "A"

    def test_monitor_tracks_system(self):
        fsm = fresh_fsm()
        monitor = attach(fsm, self._mutex_automaton())
        fsm.build_transition()
        # after one step out=1 (s toggles to 1), monitor must be in B after two
        img1 = fsm.image(fsm.init)
        img2 = fsm.image(img1)
        states = {s["watch.state"] for s in fsm.states_iter(img2)}
        assert states == {"B"}

    def test_attach_rejects_nondeterministic(self):
        fsm = fresh_fsm()
        aut = Automaton(name="bad", states=["A", "B"], initial=["A"])
        aut.add_edge("A", "A")
        aut.add_edge("A", "B")
        with pytest.raises(AutomatonError):
            attach(fsm, aut)

    def test_edge_bdd_and_rabin_pairs(self):
        fsm = fresh_fsm()
        aut = self._mutex_automaton()
        monitor = attach(fsm, aut)
        fsm.build_transition()
        pairs = monitor.rabin_pairs_bdd()
        assert len(pairs) == 1
        assert pairs[0].inf != fsm.bdd.false


class TestFairnessNormalization:
    def test_negative_becomes_complement_buchi(self):
        fsm = fresh_fsm()
        states = fsm.var("s").literal("0")
        spec = FairnessSpec([NegativeStateSet(states)])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        assert len(norm.buchi) == 1
        assert norm.buchi[0][0] == fsm.bdd.not_(states)

    def test_buchi_passthrough(self):
        fsm = fresh_fsm()
        spec = FairnessSpec([
            BuchiState(fsm.var("s").literal("1")),
            BuchiEdge(fsm.bdd.true),
        ])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        assert len(norm.buchi) == 2
        assert not norm.streett

    def test_streett_passthrough(self):
        fsm = fresh_fsm()
        spec = FairnessSpec([StreettPair(e=fsm.bdd.true, f=fsm.bdd.false)])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        assert len(norm.streett) == 1

    def test_rabin_rejected_as_system_fairness(self):
        fsm = fresh_fsm()
        spec = FairnessSpec([RabinPair(fin=fsm.bdd.false, inf=fsm.bdd.true)])
        with pytest.raises(TypeError):
            spec.normalize(fsm.bdd, fsm.bdd.true)

    def test_complement_rabin(self):
        fsm = fresh_fsm()
        pairs = [RabinPair(fin=fsm.var("s").literal("0"),
                           inf=fsm.var("s").literal("1"), label="p")]
        streett = complement_rabin(pairs)
        assert len(streett) == 1
        assert streett[0].e == pairs[0].inf
        assert streett[0].f == pairs[0].fin

    def test_trivial_property(self):
        spec = FairnessSpec()
        fsm = fresh_fsm()
        assert spec.normalize(fsm.bdd, fsm.bdd.true).trivial
