"""Stress coverage for the parallel sweep (marked ``slow``).

A 500-trial differential sweep at ``--jobs 4`` must complete clean with
every seed accounted for; on a genuinely multi-core runner it must also
beat the serial sweep on wall clock.  The speedup assertion skips
gracefully on a single-CPU machine, where four workers merely
timeslice.

Deselect with ``pytest -m 'not slow'`` when iterating.
"""

import os
import time

import pytest

from repro.oracle import run_sweep
from repro.parallel import run_sweep_parallel
from repro.perf import EngineStats

pytestmark = pytest.mark.slow

STRESS_TRIALS = 500


def test_500_trial_parallel_sweep_is_clean_and_complete():
    stats = EngineStats()
    sweep = run_sweep_parallel(STRESS_TRIALS, seed0=0, jobs=4, stats=stats)
    assert sweep.ok, sweep.summary()
    assert len(sweep.reports) == STRESS_TRIALS
    assert [r.seed for r in sweep.reports] == list(range(STRESS_TRIALS))
    # Every trial really ran: the per-phase call counters add up.
    assert stats.phases["fuzz.bddops"].calls == STRESS_TRIALS
    assert stats.phases["fuzz.gen"].calls == STRESS_TRIALS


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs more than one CPU; parallel correctness is "
    "covered by the test above",
)
def test_parallel_sweep_is_measurably_faster_than_serial():
    start = time.perf_counter()
    serial = run_sweep(STRESS_TRIALS, seed0=0)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep_parallel(STRESS_TRIALS, seed0=0, jobs=4)
    parallel_seconds = time.perf_counter() - start

    assert serial.ok and parallel.ok
    assert [r.ok for r in parallel.reports] == [r.ok for r in serial.reports]
    # "Measurably": a soft bar (5% with 2 cores, more with 4) so the
    # assertion stays robust against loaded CI runners.
    assert parallel_seconds < serial_seconds * 0.95, (
        f"parallel {parallel_seconds:.2f}s vs serial {serial_seconds:.2f}s"
    )
