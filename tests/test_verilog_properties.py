"""Property-based tests: the Verilog expression compiler against a
reference evaluator.

Random expression trees over two small registers are compiled through
vl2mv -> BLIF-MV -> BDDs; for every register valuation the wire's value
set (via the model checker's atom projection) must equal direct Python
evaluation of Verilog semantics.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.blifmv import flatten
from repro.ctl import ModelChecker
from repro.network import SymbolicFsm
from repro.verilog import compile_verilog

A_WIDTH, B_WIDTH = 2, 2
A_SIZE, B_SIZE = 1 << A_WIDTH, 1 << B_WIDTH

BINOPS = ["+", "-", "==", "!=", "<", "<=", ">", ">=", "&", "|", "^", "&&", "||"]
UNOPS = ["!", "-"]


def exprs(depth=2):
    leaves = st.sampled_from(["a", "b", "0", "1", "2", "3"])

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(UNOPS), children),
            st.tuples(st.sampled_from(BINOPS), children, children),
            st.tuples(st.just("?:"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def to_verilog(expr) -> str:
    if isinstance(expr, str):
        return expr
    if len(expr) == 2:
        return f"({expr[0]}{to_verilog(expr[1])})"
    if expr[0] == "?:":
        return (f"({to_verilog(expr[1])} ? {to_verilog(expr[2])} : "
                f"{to_verilog(expr[3])})")
    return f"({to_verilog(expr[1])} {expr[0]} {to_verilog(expr[2])})"


def size_of(expr) -> int:
    """Result modulus mirroring the compiler's domain join."""
    if isinstance(expr, str):
        if expr == "a":
            return A_SIZE
        if expr == "b":
            return B_SIZE
        return max(2, int(expr) + 1)
    if len(expr) == 2:
        op, sub = expr
        return 2 if op == "!" else size_of(sub)
    if expr[0] == "?:":
        return max(size_of(expr[2]), size_of(expr[3]))
    op = expr[0]
    if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
        return 2
    return max(size_of(expr[1]), size_of(expr[2]))


def evaluate(expr, a: int, b: int) -> int:
    if isinstance(expr, str):
        return {"a": a, "b": b}.get(expr, None) if expr in ("a", "b") else int(expr)
    if len(expr) == 2:
        op, sub = expr
        value = evaluate(sub, a, b)
        if op == "!":
            return 0 if value else 1
        return (-value) % size_of(sub)
    if expr[0] == "?:":
        return (evaluate(expr[2], a, b) if evaluate(expr[1], a, b)
                else evaluate(expr[3], a, b))
    op, left_e, right_e = expr
    left, right = evaluate(left_e, a, b), evaluate(right_e, a, b)
    size = max(size_of(left_e), size_of(right_e))
    table = {
        "+": lambda: (left + right) % size,
        "-": lambda: (left - right) % size,
        "==": lambda: int(left == right),
        "!=": lambda: int(left != right),
        "<": lambda: int(left < right),
        "<=": lambda: int(left <= right),
        ">": lambda: int(left > right),
        ">=": lambda: int(left >= right),
        "&": lambda: (left & right) % size,
        "|": lambda: (left | right) % size,
        "^": lambda: (left ^ right) % size,
        "&&": lambda: int(bool(left) and bool(right)),
        "||": lambda: int(bool(left) or bool(right)),
    }
    return table[op]()


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_compiled_expression_matches_reference(expr):
    out_size = size_of(expr)
    source = f"""
module m;
  reg [{A_WIDTH - 1}:0] a;
  reg [{B_WIDTH - 1}:0] b;
  initial a = 0;
  initial b = 0;
  always @(posedge clk) a <= $ND({", ".join(map(str, range(A_SIZE)))});
  always @(posedge clk) b <= $ND({", ".join(map(str, range(B_SIZE)))});
  wire [3:0] pad;
  assign pad = a;
  wire w;
  assign w = ({to_verilog(expr)}) == ({to_verilog(expr)});
endmodule
"""
    # Compile the expression itself onto a wire of its own domain by
    # comparing for equality with itself (always 1) -- that checks the
    # lowering is at least well-formed -- then check exact values below.
    fsm = SymbolicFsm(flatten(compile_verilog(source)))
    fsm.build_transition()
    checker = ModelChecker(fsm)
    assert checker.check("AG w=1").holds

    # Exact value check: compile `assign v = expr;` to a wire and compare
    # the atom projection per register valuation.
    source2 = f"""
module m;
  reg [{A_WIDTH - 1}:0] a;
  reg [{B_WIDTH - 1}:0] b;
  initial a = 0;
  initial b = 0;
  always @(posedge clk) a <= $ND({", ".join(map(str, range(A_SIZE)))});
  always @(posedge clk) b <= $ND({", ".join(map(str, range(B_SIZE)))});
  wire [5:0] v;
  assign v = {to_verilog(expr)};
endmodule
"""
    fsm2 = SymbolicFsm(flatten(compile_verilog(source2)))
    fsm2.build_transition()
    checker2 = ModelChecker(fsm2)
    for a, b in itertools.product(range(A_SIZE), range(B_SIZE)):
        expected = evaluate(expr, a, b)
        state = fsm2.state_cube({"a": str(a), "b": str(b)})
        value_states = checker2.eval(f"v={expected}")
        assert fsm2.bdd.and_(state, value_states) != fsm2.bdd.false, (
            f"{to_verilog(expr)} at a={a} b={b}: expected {expected}"
        )
