"""Tests for the secondary BDD operations in repro.bdd.ops."""

import pytest

from repro.bdd import BDD
from repro.bdd.ops import (
    count_nodes,
    cube_minus,
    cube_union_vars,
    disjoint,
    implies,
    minterm,
    transfer,
)


@pytest.fixture
def bdd():
    manager = BDD()
    for name in ("a", "b", "c"):
        manager.add_var(name)
    return manager


class TestTransfer:
    def test_identity_transfer(self, bdd):
        f = bdd.xor(bdd.var("a"), bdd.var("b"))
        dst = BDD()
        for name in ("a", "b", "c"):
            dst.add_var(name)
        g = transfer(f, bdd, dst, {0: 0, 1: 1, 2: 2})
        for a in (0, 1):
            for b in (0, 1):
                env = {"a": a, "b": b, "c": 0}
                assert dst.eval(g, env) == bdd.eval(f, env)

    def test_transfer_with_reordered_destination(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.nvar("c"))
        dst = BDD()
        for name in ("c", "b", "a"):  # reversed order
            dst.add_var(name)
        mapping = {bdd.var_index(n): dst.var_index(n) for n in ("a", "b", "c")}
        g = transfer(f, bdd, dst, mapping)
        assert dst.eval(g, {"a": 1, "b": 0, "c": 0}) is True
        assert dst.eval(g, {"a": 1, "b": 0, "c": 1}) is False

    def test_transfer_with_variable_renaming(self, bdd):
        f = bdd.var("a")
        dst = BDD()
        dst.add_var("x")
        g = transfer(f, bdd, dst, {bdd.var_index("a"): dst.var_index("x")})
        assert g == dst.var("x")


class TestCubeHelpers:
    def test_cube_union_vars(self, bdd):
        c1 = bdd.cube(["a"])
        c2 = bdd.cube(["b", "c"])
        union = cube_union_vars(bdd, [c1, c2])
        assert set(bdd.cube_vars(union)) == {0, 1, 2}

    def test_cube_minus(self, bdd):
        cube = bdd.cube(["a", "b", "c"])
        reduced = cube_minus(bdd, cube, [bdd.var_index("b")])
        assert set(bdd.cube_vars(reduced)) == {0, 2}

    def test_minterm_positive_and_negative(self, bdd):
        f = minterm(bdd, {"a": True, "b": False})
        assert bdd.eval(f, {"a": 1, "b": 0, "c": 0}) is True
        assert bdd.eval(f, {"a": 1, "b": 1, "c": 0}) is False

    def test_minterm_accepts_indices(self, bdd):
        f = minterm(bdd, {0: True})
        assert f == bdd.var("a")


class TestPredicates:
    def test_disjoint(self, bdd):
        assert disjoint(bdd, bdd.var("a"), bdd.nvar("a"))
        assert not disjoint(bdd, bdd.var("a"), bdd.var("b"))

    def test_implies(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert implies(bdd, f, bdd.var("a"))
        assert not implies(bdd, bdd.var("a"), f)

    def test_count_nodes(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        g = bdd.or_(bdd.var("a"), bdd.var("b"))
        shared = count_nodes(bdd, [f, g])
        assert shared <= bdd.size(f) + bdd.size(g)
