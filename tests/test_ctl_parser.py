"""Tests for the CTL formula parser."""

import pytest

from repro.ctl import (
    AF,
    AG,
    AU,
    AX,
    And,
    Atom,
    CtlParseError,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
    is_propositional,
    parse_ctl,
)


class TestAtoms:
    def test_simple_atom(self):
        assert parse_ctl("x=1") == Atom("x", ("1",))

    def test_bare_name_is_equals_one(self):
        assert parse_ctl("ready") == Atom("ready", ("1",))

    def test_symbolic_value(self):
        assert parse_ctl("state=idle") == Atom("state", ("idle",))

    def test_dotted_names(self):
        assert parse_ctl("u1.phil0=eating") == Atom("u1.phil0", ("eating",))

    def test_value_set(self):
        assert parse_ctl("s{a,b}") == Atom("s", ("a", "b"))

    def test_constants(self):
        assert parse_ctl("TRUE") == TrueF()
        assert parse_ctl("FALSE") == FalseF()


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        f = parse_ctl("a | b & c")
        assert isinstance(f, Or)
        assert isinstance(f.right, And)

    def test_implies_is_right_associative(self):
        f = parse_ctl("a -> b -> c")
        assert isinstance(f, Implies)
        assert isinstance(f.right, Implies)

    def test_not_binds_tightest(self):
        f = parse_ctl("!a & b")
        assert isinstance(f, And)
        assert isinstance(f.left, Not)

    def test_parentheses(self):
        f = parse_ctl("a & (b | c)")
        assert isinstance(f, And)
        assert isinstance(f.right, Or)

    def test_iff(self):
        f = parse_ctl("a <-> b")
        assert isinstance(f, Iff)

    def test_star_and_plus_aliases(self):
        assert parse_ctl("a * b") == parse_ctl("a & b")
        assert parse_ctl("a + b") == parse_ctl("a | b")


class TestTemporal:
    @pytest.mark.parametrize("text,cls", [
        ("AG a", AG), ("AF a", AF), ("AX a", AX),
        ("EG a", EG), ("EF a", EF), ("EX a", EX),
    ])
    def test_unary_operators(self, text, cls):
        assert isinstance(parse_ctl(text), cls)

    def test_until(self):
        f = parse_ctl("E[a U b]")
        assert isinstance(f, EU)
        g = parse_ctl("A[a U b]")
        assert isinstance(g, AU)

    def test_nested(self):
        f = parse_ctl("AG (req=1 -> AF ack=1)")
        assert isinstance(f, AG)
        assert isinstance(f.sub, Implies)
        assert isinstance(f.sub.right, AF)

    def test_unary_operators_chain(self):
        f = parse_ctl("AG EF x=1")
        assert isinstance(f, AG)
        assert isinstance(f.sub, EF)

    def test_str_roundtrip(self):
        for text in ("AG !(a=1 & b=1)", "E[a=1 U b=0]", "AF x=1 | EG y=2"):
            f = parse_ctl(text)
            assert parse_ctl(str(f)) == f


class TestErrors:
    @pytest.mark.parametrize("text", [
        "", "AG", "(a", "E[a b]", "a &", "A[a U b", "=3", "a = ",
    ])
    def test_malformed(self, text):
        with pytest.raises(CtlParseError):
            parse_ctl(text)

    def test_trailing_input(self):
        with pytest.raises(CtlParseError):
            parse_ctl("a b")


class TestPropositional:
    def test_propositional_detection(self):
        assert is_propositional(parse_ctl("a=1 & !(b=0 | c=2)"))
        assert not is_propositional(parse_ctl("AG a=1"))
        assert not is_propositional(parse_ctl("a=1 & EX b=1"))
