"""Tests for the Verilog front end: lexer, parser, and compiled semantics.

Semantic tests compile small modules and check the resulting machine's
behaviour (reached states, functions) rather than the BLIF-MV text — the
lowering is free to choose its table decomposition.
"""

import pytest

from repro.blifmv import flatten
from repro.ctl import ModelChecker, check_ctl
from repro.network import SymbolicFsm
from repro.verilog import VerilogError, compile_verilog, parse_verilog, tokenize
from repro.verilog.lexer import parse_sized_literal


def machine(src, **kwargs):
    fsm = SymbolicFsm(flatten(compile_verilog(src, **kwargs)))
    fsm.build_transition()
    return fsm


def reached_values(fsm, var):
    reached = fsm.reachable().reached
    return {s[var] for s in fsm.states_iter(reached)}


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("module m; wire x; endmodule")
        assert [t.text for t in tokens] == [
            "module", "m", ";", "wire", "x", ";", "endmodule"]

    def test_comments_stripped(self):
        tokens = tokenize("a // comment\n /* block\n comment */ b")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_sized_literals(self):
        assert parse_sized_literal("4'b0101") == (5, 4)
        assert parse_sized_literal("2'd3") == (3, 2)
        assert parse_sized_literal("8'hff") == (255, 8)

    def test_xz_rejected(self):
        with pytest.raises(VerilogError):
            parse_sized_literal("4'b01xz")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens] == [1, 2, 3]

    def test_unexpected_character(self):
        with pytest.raises(VerilogError):
            tokenize("a ` b")


class TestParser:
    def test_module_ports(self):
        src = "module m(a, b); input a; output b; assign b = a; endmodule"
        mod = parse_verilog(src).modules[0]
        assert mod.ports == ["a", "b"]

    def test_operator_precedence(self):
        from repro.verilog.ast import Binop
        src = "module m; wire x, a, b, c; assign x = a | b & c; endmodule"
        mod = parse_verilog(src).modules[0]
        assign = [i for i in mod.items if type(i).__name__ == "ContAssign"][0]
        assert isinstance(assign.value, Binop)
        assert assign.value.op == "|"
        assert assign.value.right.op == "&"

    def test_missing_semicolon(self):
        with pytest.raises(VerilogError):
            parse_verilog("module m; wire x endmodule")

    def test_unsupported_system_call(self):
        with pytest.raises(VerilogError):
            parse_verilog("module m; wire x; assign x = $random(); endmodule")


class TestCombinational:
    def test_assign_chain(self):
        fsm = machine("""
module m;
  reg s; initial s = 0;
  always @(posedge clk) s <= !s;
  wire a, b;
  assign a = !s;
  assign b = a && s;
endmodule
""")
        mc = ModelChecker(fsm)
        assert mc.check("AG !(b=1)").holds  # a && s is never true

    def test_arithmetic(self):
        fsm = machine("""
module m;
  reg [2:0] c; initial c = 0;
  always @(posedge clk) c <= c + 3;
endmodule
""")
        assert reached_values(fsm, "c") == {"0", "3", "6", "1", "4", "7", "2", "5"}

    def test_comparison_and_ternary(self):
        fsm = machine("""
module m;
  reg [1:0] c; initial c = 0;
  always @(posedge clk) c <= (c >= 2) ? 0 : c + 1;
endmodule
""")
        assert reached_values(fsm, "c") == {"0", "1", "2"}

    def test_bit_select(self):
        fsm = machine("""
module m;
  reg [2:0] c; initial c = 0;
  always @(posedge clk) c <= c + 1;
  wire hi;
  assign hi = c[2];
endmodule
""")
        mc = ModelChecker(fsm)
        # hi=1 exactly when c >= 4
        sat = mc.eval("hi=1")
        got = {s["c"] for s in fsm.states_iter(sat)}
        assert got == {"4", "5", "6", "7"}

    def test_reduction_operators(self):
        fsm = machine("""
module m;
  reg [1:0] c; initial c = 0;
  always @(posedge clk) c <= c + 1;
  wire all1, any1;
  assign all1 = &c;
  assign any1 = |c;
endmodule
""")
        mc = ModelChecker(fsm)
        assert {s["c"] for s in fsm.states_iter(mc.eval("all1=1"))} == {"3"}
        assert {s["c"] for s in fsm.states_iter(mc.eval("any1=1"))} == {"1", "2", "3"}


class TestSequential:
    def test_if_else_hold_semantics(self):
        fsm = machine("""
module m;
  reg s, up; initial s = 0; initial up = 0;
  always @(posedge clk) up <= !up;
  always @(posedge clk) begin
    if (up) s <= 1;
  end
endmodule
""")
        # s holds its value when up=0
        mc = ModelChecker(fsm)
        assert mc.check("AG (s=1 -> AX s=1)").holds

    def test_case_statement(self):
        fsm = machine("""
module m;
  enum { red, green, yellow } reg light;
  initial light = red;
  always @(posedge clk) begin
    case (light)
      red: light <= green;
      green: light <= yellow;
      yellow: light <= red;
    endcase
  end
endmodule
""")
        assert reached_values(fsm, "light") == {"red", "green", "yellow"}
        mc = ModelChecker(fsm)
        assert mc.check("AG (light=red -> AX light=green)").holds

    def test_case_default(self):
        fsm = machine("""
module m;
  reg [1:0] c; initial c = 0;
  always @(posedge clk) begin
    case (c)
      0: c <= 2;
      default: c <= 0;
    endcase
  end
endmodule
""")
        assert reached_values(fsm, "c") == {"0", "2"}

    def test_nonblocking_reads_old_values(self):
        # classic swap: both registers exchange values simultaneously
        fsm = machine("""
module m;
  reg a, b; initial a = 0; initial b = 1;
  always @(posedge clk) begin
    a <= b;
    b <= a;
  end
endmodule
""")
        mc = ModelChecker(fsm)
        assert mc.check("AG ((a=0 & b=1) | (a=1 & b=0))").holds

    def test_blocking_in_comb_sees_new_values(self):
        fsm = machine("""
module m;
  reg s; initial s = 0;
  always @(posedge clk) s <= !s;
  reg t, u;
  always @(*) begin
    t = !s;
    u = t;
  end
endmodule
""")
        mc = ModelChecker(fsm)
        assert mc.check("AG ((s=0 & u=1) | (s=1 & u=0))").holds


class TestNonDeterminism:
    def test_nd_wire(self):
        fsm = machine("""
module m;
  reg s; initial s = 0;
  wire flip;
  assign flip = $ND(0, 1);
  always @(posedge clk) s <= flip ? !s : s;
endmodule
""")
        assert reached_values(fsm, "s") == {"0", "1"}

    def test_nd_initial_value(self):
        fsm = machine("""
module m;
  reg [1:0] c; initial c = $ND(1, 2);
  always @(posedge clk) c <= c;
endmodule
""")
        init_states = {s["c"] for s in fsm.states_iter(fsm.init)}
        assert init_states == {"1", "2"}

    def test_nd_requires_constants(self):
        with pytest.raises(VerilogError):
            compile_verilog("""
module m;
  reg s; wire w; initial s = 0;
  assign w = $ND(s, 1);
  always @(posedge clk) s <= w;
endmodule
""")


class TestHierarchy:
    SRC = """
module inv(i, o);
  input i; output o;
  assign o = !i;
endmodule

module top;
  reg s; initial s = 0;
  wire t;
  inv u1(.i(s), .o(t));
  always @(posedge clk) s <= t;
endmodule
"""

    def test_instance_semantics(self):
        fsm = machine(self.SRC)
        assert reached_values(fsm, "s") == {"0", "1"}

    def test_positional_connections(self):
        fsm = machine(self.SRC.replace(".i(s), .o(t)", "s, t"))
        assert reached_values(fsm, "s") == {"0", "1"}

    def test_root_selection(self):
        design = compile_verilog(self.SRC)
        assert design.root == "top"

    def test_explicit_root(self):
        design = compile_verilog(self.SRC, root="inv")
        assert design.root == "inv"

    def test_parameters(self):
        fsm = machine("""
module m;
  parameter LIMIT = 2;
  reg [1:0] c; initial c = 0;
  always @(posedge clk) c <= (c == LIMIT) ? 0 : c + 1;
endmodule
""")
        assert reached_values(fsm, "c") == {"0", "1", "2"}


class TestCompileErrors:
    def test_incomplete_comb_assignment(self):
        with pytest.raises(VerilogError) as err:
            compile_verilog("""
module m;
  reg s; initial s = 0;
  always @(posedge clk) s <= s;
  reg w;
  always @(*) begin
    if (s) w = 1;
  end
endmodule
""")
        assert "implied latch" in str(err.value)

    def test_undeclared_net(self):
        with pytest.raises(VerilogError):
            compile_verilog("module m; assign x = 1; endmodule")

    def test_blocking_in_sequential_rejected(self):
        with pytest.raises(VerilogError):
            compile_verilog("""
module m;
  reg s; initial s = 0;
  always @(posedge clk) s = !s;
endmodule
""")

    def test_enum_arithmetic_rejected(self):
        with pytest.raises(VerilogError):
            compile_verilog("""
module m;
  enum { a, b } reg s;
  initial s = a;
  wire w;
  assign w = s + 1;
  always @(posedge clk) s <= s;
endmodule
""")

    def test_width_limit(self):
        with pytest.raises(VerilogError):
            compile_verilog("""
module m;
  reg [15:0] c; initial c = 0;
  always @(posedge clk) c <= c;
endmodule
""")

    def test_unknown_module_instantiated(self):
        with pytest.raises(VerilogError):
            compile_verilog("module m; nothere u1(x); wire x; endmodule")


class TestSourceAnnotations:
    def test_registers_carry_source_lines(self):
        src = """module m;
  reg a, b;
  initial a = 0;
  initial b = 0;
  always @(posedge clk) a <= !a;
  always @(posedge clk) begin
    if (a) b <= 1;
    else b <= 0;
  end
endmodule
"""
        model = flatten(compile_verilog(src))
        assert model.sources["a"] == "m.v:5"
        assert model.sources["b"] == "m.v:7,8"

    def test_sources_roundtrip_blifmv(self):
        from repro.blifmv import parse, write
        src = """module m;
  reg a;
  initial a = 0;
  always @(posedge clk) a <= !a;
endmodule
"""
        design = compile_verilog(src)
        again = flatten(parse(write(design)))
        assert again.sources["a"].startswith("m.v:")
