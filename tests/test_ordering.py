"""Tests for variable-ordering heuristics and rebuild-based reordering."""

import pytest

from repro.bdd import BDD
from repro.bdd.ordering import (
    affinity_order,
    interacting_fsm_order,
    population_order,
    reorder,
    shared_size_under,
    sift,
)
from repro.bdd.ops import transfer


class TestAffinityOrder:
    def test_groups_cluster(self):
        order = affinity_order(
            groups=[{"a", "b"}, {"a", "b"}, {"c", "d"}],
            all_items=["a", "c", "b", "d"],
        )
        # a and b co-occur twice: they must be adjacent.
        ia, ib = order.index("a"), order.index("b")
        assert abs(ia - ib) == 1

    def test_all_items_present_once(self):
        items = ["x", "y", "z", "w"]
        order = affinity_order([{"x", "z"}], items)
        assert sorted(order) == sorted(items)

    def test_isolated_items_kept(self):
        order = affinity_order([], ["p", "q"])
        assert sorted(order) == ["p", "q"]

    def test_items_not_in_groups_ignored_in_affinity(self):
        order = affinity_order([{"a", "b", "zz"}], ["a", "b"])
        assert sorted(order) == ["a", "b"]


class TestInteractingFsmOrder:
    def test_communicating_latches_adjacent(self):
        order = interacting_fsm_order(
            {"l1": {"l2"}, "l2": {"l1"}, "l3": set(), "l4": {"l3"}},
        )
        i1, i2 = order.index("l1"), order.index("l2")
        assert abs(i1 - i2) == 1

    def test_nonstate_vars_attached_to_users(self):
        order = interacting_fsm_order(
            {"l1": {"w"}, "l2": set()},
            nonstate_vars=["w", "unused"],
        )
        assert order.index("w") == order.index("l1") + 1
        assert order[-1] == "unused"


def _setup():
    bdd = BDD()
    for name in ("a", "b", "c", "d"):
        bdd.add_var(name)
    f = bdd.or_(bdd.and_(bdd.var("a"), bdd.var("b")),
                bdd.and_(bdd.var("c"), bdd.var("d")))
    return bdd, f


class TestReorder:
    def test_semantics_preserved(self):
        bdd, f = _setup()
        new, roots = reorder(bdd, [3, 1, 2, 0], {"f": f})
        g = roots["f"]
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    for d in (0, 1):
                        env = {"a": a, "b": b, "c": c, "d": d}
                        assert new.eval(g, env) == bdd.eval(f, env)

    def test_order_installed(self):
        bdd, f = _setup()
        new, _ = reorder(bdd, [3, 2, 1, 0], {"f": f})
        assert [new.var_name(v) for v in new.order] == ["d", "c", "b", "a"]

    def test_bad_permutation_rejected(self):
        bdd, f = _setup()
        with pytest.raises(ValueError):
            reorder(bdd, [0, 0, 1, 2], {"f": f})

    def test_interleaved_order_smaller_for_comparator(self):
        # The classic example: x1..xn,y1..yn ordering blows up equality,
        # interleaving keeps it linear.
        n = 6
        bad = BDD()
        for i in range(n):
            bad.add_var(f"x{i}")
        for i in range(n):
            bad.add_var(f"y{i}")
        eq = bad.true
        for i in range(n):
            eq = bad.and_(eq, bad.xnor(bad.var(f"x{i}"), bad.var(f"y{i}")))
        blocked_size = bad.size(eq)
        interleaved = [bad.var_index(f"x{i // 2}") if i % 2 == 0
                       else bad.var_index(f"y{i // 2}")
                       for i in range(2 * n)]
        small_size = shared_size_under(bad, interleaved, {"eq": eq})
        assert small_size < blocked_size

    def test_transfer_between_managers(self):
        bdd, f = _setup()
        other = BDD()
        for name in ("a", "b", "c", "d"):
            other.add_var(name)
        g = transfer(f, bdd, other, {v: v for v in range(4)})
        assert other.eval(g, {"a": 1, "b": 1, "c": 0, "d": 0}) is True


class TestSift:
    def test_sift_never_worse(self):
        bad = BDD()
        n = 4
        for i in range(n):
            bad.add_var(f"x{i}")
        for i in range(n):
            bad.add_var(f"y{i}")
        eq = bad.true
        for i in range(n):
            eq = bad.and_(eq, bad.xnor(bad.var(f"x{i}"), bad.var(f"y{i}")))
        original = bad.size(eq)
        new, roots = sift(bad, {"eq": eq})
        assert new.size(roots["eq"]) <= original

    def test_sift_preserves_semantics(self):
        bdd, f = _setup()
        new, roots = sift(bdd, {"f": f})
        g = roots["f"]
        assert new.eval(g, {"a": 1, "b": 1, "c": 0, "d": 0}) is True
        assert new.eval(g, {"a": 0, "b": 1, "c": 0, "d": 0}) is False


class TestPopulationOrder:
    def test_most_populous_first(self):
        bdd = BDD()
        a = bdd.add_var("a")
        b = bdd.add_var("b")
        c = bdd.add_var("c")
        # a labels two nodes (literal + conjunction root), b one, c none.
        bdd.and_(bdd.var(a), bdd.var(b))
        order = population_order(bdd)
        assert order[0] == a
        assert order[1] == b
        assert order[2] == c
        assert bdd.var_population(a) > bdd.var_population(b) > bdd.var_population(c)

    def test_ties_break_by_level(self):
        bdd = BDD()
        names = [bdd.add_var(n) for n in ("p", "q", "r")]
        # No nodes at all: every population is 0, so the order falls back
        # to top-to-bottom levels.
        assert population_order(bdd) == list(bdd.order)
