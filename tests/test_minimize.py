"""Tests for bisimulation partition refinement and don't-care minimization."""

import pytest

from repro.blifmv import flatten, parse
from repro.minimize import (
    bisimulation_partition,
    initial_partition,
    minimize_with_equivalence,
    minimize_with_reached,
    quotient_size,
    representatives,
)
from repro.network import SymbolicFsm

# States 1 and 2 are bisimilar (same label, both go to 3); 3 loops.
SYMMETRIC = """
.model sym
.mv s,n 4
.table s -> n
0 (1,2)
1 3
2 3
3 3
.table s -> obs
0 0
1 1
2 1
3 0
.mv obs 2
.latch n s
.reset s
0
.end
"""

# 1 and 2 share a label but behave differently.
ASYMMETRIC = """
.model asym
.mv s,n 4
.table s -> n
0 (1,2)
1 0
2 3
3 3
.table s -> obs
0 0
1 1
2 1
3 0
.mv obs 2
.latch n s
.reset s
0
.end
"""


def build(text):
    fsm = SymbolicFsm(flatten(parse(text)))
    fsm.build_transition()
    return fsm


def obs_predicate(fsm, value):
    # project the wire 'obs' onto states via the checker's projection
    from repro.ctl import ModelChecker
    return ModelChecker(fsm).eval(f"obs={value}")


class TestPartitionRefinement:
    def test_bisimilar_states_stay_together(self):
        fsm = build(SYMMETRIC)
        partition = bisimulation_partition(fsm, [obs_predicate(fsm, "1")])
        assert quotient_size(partition) == 3  # {0}, {1,2}, {3}
        # find the class containing state 1
        s1 = fsm.state_cube({"s": "1"})
        s2 = fsm.state_cube({"s": "2"})
        cls = [c for c in partition.classes
               if fsm.bdd.and_(c, s1) != fsm.bdd.false]
        assert len(cls) == 1
        assert fsm.bdd.and_(cls[0], s2) != fsm.bdd.false

    def test_behaviour_difference_splits(self):
        fsm = build(ASYMMETRIC)
        partition = bisimulation_partition(fsm, [obs_predicate(fsm, "1")])
        s1 = fsm.state_cube({"s": "1"})
        s2 = fsm.state_cube({"s": "2"})
        cls1 = [c for c in partition.classes
                if fsm.bdd.and_(c, s1) != fsm.bdd.false][0]
        assert fsm.bdd.and_(cls1, s2) == fsm.bdd.false

    def test_classes_partition_the_space(self):
        fsm = build(SYMMETRIC)
        partition = bisimulation_partition(fsm, [obs_predicate(fsm, "1")])
        bdd = fsm.bdd
        union = bdd.false
        for cls in partition.classes:
            assert bdd.and_(cls, union) == bdd.false
            union = bdd.or_(union, cls)
        assert union == fsm.state_domain()

    def test_no_observables_single_class_when_uniform(self):
        # with no observables, refinement may still split on deadlock
        # structure; the fully-looping counter collapses to one class.
        fsm = build("""
.model ring
.mv s,n 3
.table s -> n
0 1
1 2
2 0
.latch n s
.reset s
0
.end
""")
        partition = bisimulation_partition(fsm, [])
        assert quotient_size(partition) == 1

    def test_within_restriction(self):
        fsm = build(SYMMETRIC)
        reached = fsm.reachable().reached
        partition = bisimulation_partition(
            fsm, [obs_predicate(fsm, "1")], within=reached)
        union = fsm.bdd.false
        for cls in partition.classes:
            union = fsm.bdd.or_(union, cls)
        assert union == fsm.bdd.and_(reached, fsm.state_domain())

    def test_initial_partition_splits_by_observables(self):
        fsm = build(SYMMETRIC)
        classes = initial_partition(
            fsm, [obs_predicate(fsm, "1")], fsm.state_domain())
        assert len(classes) == 2


class TestRepresentatives:
    def test_one_representative_per_class(self):
        fsm = build(SYMMETRIC)
        partition = bisimulation_partition(fsm, [obs_predicate(fsm, "1")])
        care = representatives(fsm, partition)
        assert fsm.count_states(care) == quotient_size(partition)


class TestDontCareMinimization:
    def test_reached_minimization_preserves_reachable_behaviour(self):
        fsm = build(SYMMETRIC)
        reached = fsm.reachable().reached
        minimized, report = minimize_with_reached(fsm, reached)
        bdd = fsm.bdd
        # On reached states the minimized relation agrees with the original.
        assert bdd.and_(bdd.xor(minimized, fsm.trans), reached) == bdd.false
        assert report.original_nodes > 0
        assert report.minimized_nodes <= report.original_nodes * 2

    def test_reduction_metric(self):
        fsm = build(SYMMETRIC)
        _minimized, report = minimize_with_reached(fsm)
        assert -1.0 <= report.reduction <= 1.0

    def test_equivalence_minimization_agrees_on_representatives(self):
        fsm = build(SYMMETRIC)
        partition = bisimulation_partition(fsm, [obs_predicate(fsm, "1")])
        care = representatives(fsm, partition)
        minimized, _report = minimize_with_equivalence(fsm, partition)
        bdd = fsm.bdd
        assert bdd.and_(bdd.xor(minimized, fsm.trans), care) == bdd.false
