"""Unit tests for the core BDD manager."""

import pytest

from repro.bdd import BDD, BddError, FALSE, TRUE


@pytest.fixture
def bdd():
    manager = BDD()
    for name in ("a", "b", "c", "d"):
        manager.add_var(name)
    return manager


class TestVariables:
    def test_declared_variables_are_ordered(self, bdd):
        assert bdd.var_count == 4
        assert [bdd.var_name(v) for v in bdd.order] == ["a", "b", "c", "d"]

    def test_duplicate_declaration_rejected(self, bdd):
        with pytest.raises(BddError):
            bdd.add_var("a")

    def test_unknown_variable_rejected(self, bdd):
        with pytest.raises(BddError):
            bdd.var_index("zz")

    def test_insert_at_level(self):
        manager = BDD()
        manager.add_var("x")
        manager.add_var("y")
        manager.add_var("z", level=0)
        assert [manager.var_name(v) for v in manager.order] == ["z", "x", "y"]

    def test_set_order_requires_empty_manager(self, bdd):
        bdd.and_(bdd.var("a"), bdd.var("b"))
        with pytest.raises(BddError):
            bdd.set_order([3, 2, 1, 0])


class TestCanonicity:
    def test_terminals(self, bdd):
        assert bdd.true == TRUE
        assert bdd.false == FALSE

    def test_same_function_same_node(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f1 = bdd.and_(a, b)
        f2 = bdd.not_(bdd.or_(bdd.not_(a), bdd.not_(b)))
        assert f1 == f2

    def test_reduction_no_redundant_test(self, bdd):
        a = bdd.var("a")
        assert bdd.ite(a, bdd.true, bdd.true) == bdd.true

    def test_negative_literal(self, bdd):
        assert bdd.nvar("a") == bdd.not_(bdd.var("a"))

    def test_double_negation(self, bdd):
        f = bdd.xor(bdd.var("a"), bdd.var("c"))
        assert bdd.not_(bdd.not_(f)) == f


class TestConnectives:
    def test_truth_table_and(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        for a in (0, 1):
            for b in (0, 1):
                expected = bool(a and b)
                env = {"a": a, "b": b, "c": 0, "d": 0}
                assert bdd.eval(f, env) is expected

    def test_truth_table_xor(self, bdd):
        f = bdd.xor(bdd.var("a"), bdd.var("b"))
        for a in (0, 1):
            for b in (0, 1):
                env = {"a": a, "b": b, "c": 0, "d": 0}
                assert bdd.eval(f, env) is bool(a ^ b)

    def test_implies(self, bdd):
        f = bdd.implies(bdd.var("a"), bdd.var("b"))
        assert bdd.eval(f, {"a": 0, "b": 0, "c": 0, "d": 0}) is True
        assert bdd.eval(f, {"a": 1, "b": 0, "c": 0, "d": 0}) is False

    def test_xnor_is_not_xor(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.xnor(a, b) == bdd.not_(bdd.xor(a, b))

    def test_conj_disj_shortcut(self, bdd):
        vars_ = [bdd.var(n) for n in ("a", "b", "c")]
        assert bdd.conj([bdd.false] + vars_) == bdd.false
        assert bdd.disj([bdd.true] + vars_) == bdd.true

    def test_diff(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.diff(a, b)
        assert bdd.eval(f, {"a": 1, "b": 0, "c": 0, "d": 0}) is True
        assert bdd.eval(f, {"a": 1, "b": 1, "c": 0, "d": 0}) is False


class TestIte:
    def test_ite_as_mux(self, bdd):
        f = bdd.ite(bdd.var("a"), bdd.var("b"), bdd.var("c"))
        assert bdd.eval(f, {"a": 1, "b": 1, "c": 0, "d": 0}) is True
        assert bdd.eval(f, {"a": 0, "b": 1, "c": 0, "d": 0}) is False
        assert bdd.eval(f, {"a": 0, "b": 0, "c": 1, "d": 0}) is True

    def test_ite_terminal_cases(self, bdd):
        a = bdd.var("a")
        g = bdd.var("b")
        assert bdd.ite(bdd.true, g, a) == g
        assert bdd.ite(bdd.false, g, a) == a
        assert bdd.ite(a, g, g) == g
        assert bdd.ite(a, bdd.true, bdd.false) == a


class TestQuantification:
    def test_exist_removes_variable(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        g = bdd.exist(["a"], f)
        assert g == bdd.var("b")

    def test_forall(self, bdd):
        f = bdd.or_(bdd.var("a"), bdd.var("b"))
        assert bdd.forall(["a"], f) == bdd.var("b")

    def test_exist_of_disjoint_var_is_identity(self, bdd):
        f = bdd.xor(bdd.var("a"), bdd.var("b"))
        assert bdd.exist(["d"], f) == f

    def test_and_exists_equals_sequential(self, bdd):
        f = bdd.or_(bdd.var("a"), bdd.var("c"))
        g = bdd.xor(bdd.var("a"), bdd.var("b"))
        direct = bdd.and_exists(f, g, ["a"])
        sequential = bdd.exist(["a"], bdd.and_(f, g))
        assert direct == sequential

    def test_multi_var_cube(self, bdd):
        f = bdd.conj([bdd.var("a"), bdd.var("b"), bdd.var("c")])
        assert bdd.exist(["a", "b", "c"], f) == bdd.true

    def test_cube_vars_roundtrip(self, bdd):
        cube = bdd.cube(["c", "a"])
        names = {bdd.var_name(v) for v in bdd.cube_vars(cube)}
        assert names == {"a", "c"}


class TestSubstitution:
    def test_rename_order_preserving(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.nvar("b"))
        mapping = {bdd.var_index("a"): bdd.var_index("c"),
                   bdd.var_index("b"): bdd.var_index("d")}
        g = bdd.rename(f, mapping)
        assert bdd.eval(g, {"a": 0, "b": 0, "c": 1, "d": 0}) is True

    def test_rename_rejects_order_violation(self, bdd):
        f = bdd.and_(bdd.var("c"), bdd.var("d"))
        mapping = {bdd.var_index("c"): bdd.var_index("b"),
                   bdd.var_index("d"): bdd.var_index("a")}
        with pytest.raises(BddError):
            bdd.rename(f, mapping)

    def test_compose(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        g = bdd.compose(f, "a", bdd.or_(bdd.var("c"), bdd.var("d")))
        assert bdd.eval(g, {"a": 0, "b": 1, "c": 1, "d": 0}) is True
        assert bdd.eval(g, {"a": 1, "b": 1, "c": 0, "d": 0}) is False

    def test_vector_compose_is_simultaneous(self, bdd):
        # swap a and b simultaneously: a&!b becomes b&!a
        f = bdd.and_(bdd.var("a"), bdd.nvar("b"))
        sub = {bdd.var_index("a"): bdd.var("b"), bdd.var_index("b"): bdd.var("a")}
        g = bdd.vector_compose(f, sub)
        assert bdd.eval(g, {"a": 0, "b": 1, "c": 0, "d": 0}) is True
        assert bdd.eval(g, {"a": 1, "b": 0, "c": 0, "d": 0}) is False


class TestCofactorsAndDontCares:
    def test_restrict_assignment(self, bdd):
        f = bdd.ite(bdd.var("a"), bdd.var("b"), bdd.var("c"))
        assert bdd.restrict(f, {bdd.var_index("a"): True}) == bdd.var("b")
        assert bdd.restrict(f, {bdd.var_index("a"): False}) == bdd.var("c")

    def test_cofactor_cube(self, bdd):
        f = bdd.ite(bdd.var("a"), bdd.var("b"), bdd.var("c"))
        cube = bdd.and_(bdd.var("a"), bdd.nvar("b"))
        assert bdd.cofactor_cube(f, cube) == bdd.false

    def test_constrain_agrees_on_care_set(self, bdd):
        f = bdd.xor(bdd.var("a"), bdd.var("b"))
        care = bdd.var("a")
        g = bdd.constrain(f, care)
        # On the care set the functions agree.
        assert bdd.and_(bdd.xor(f, g), care) == bdd.false

    def test_constrain_identity_cases(self, bdd):
        f = bdd.var("a")
        assert bdd.constrain(f, bdd.true) == f
        assert bdd.constrain(f, f) == bdd.true
        with pytest.raises(BddError):
            bdd.constrain(f, bdd.false)

    def test_restrict_dc_agrees_and_shrinks_support(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = bdd.or_(bdd.and_(a, b), bdd.and_(bdd.not_(a), c))
        care = a
        g = bdd.restrict_dc(f, care)
        assert bdd.and_(bdd.xor(f, g), care) == bdd.false
        # restrict guarantees support(g) subset of support(f)
        assert set(bdd.support(g)) <= set(bdd.support(f))


class TestCountingAndEnumeration:
    def test_sat_count_simple(self, bdd):
        f = bdd.or_(bdd.var("a"), bdd.var("b"))
        assert bdd.sat_count(f, ["a", "b"]) == 3
        assert bdd.sat_count(f) == 12  # free c, d double twice

    def test_sat_count_terminals(self, bdd):
        assert bdd.sat_count(bdd.true, ["a", "b"]) == 4
        assert bdd.sat_count(bdd.false, ["a", "b"]) == 0

    def test_sat_count_requires_support(self, bdd):
        f = bdd.var("c")
        with pytest.raises(BddError):
            bdd.sat_count(f, ["a"])

    def test_sat_iter_covers_all_models(self, bdd):
        f = bdd.xor(bdd.var("a"), bdd.var("c"))
        models = list(bdd.sat_iter(f, ["a", "b", "c"]))
        assert len(models) == 4
        for m in models:
            named = {bdd.var_name(k): v for k, v in m.items()}
            assert named["a"] != named["c"]

    def test_pick_cube_satisfies(self, bdd):
        f = bdd.and_(bdd.var("b"), bdd.nvar("c"))
        cube = bdd.pick_cube(f, ["a", "b", "c", "d"])
        env = {bdd.var_name(k): v for k, v in cube.items()}
        assert bdd.eval(f, env) is True

    def test_pick_cube_of_false(self, bdd):
        assert bdd.pick_cube(bdd.false) is None

    def test_support(self, bdd):
        f = bdd.ite(bdd.var("a"), bdd.var("c"), bdd.var("c"))
        assert [bdd.var_name(v) for v in bdd.support(f)] == ["c"]

    def test_size(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.size(f) == 4  # two internal + two terminals


class TestGarbageCollection:
    def test_gc_preserves_roots(self, bdd):
        f = bdd.xor(bdd.var("a"), bdd.var("b"))
        garbage = [bdd.conj([bdd.var("a"), bdd.var("c"), bdd.var("d")])]
        bdd.register_root("f", f)
        del garbage
        before = len(bdd)
        freed = bdd.gc()
        assert freed > 0
        assert len(bdd) < before
        assert bdd.eval(f, {"a": 1, "b": 0, "c": 0, "d": 0}) is True

    def test_gc_extra_roots(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("d"))
        bdd.gc(extra_roots=[f])
        assert bdd.eval(f, {"a": 1, "b": 0, "c": 0, "d": 1}) is True

    def test_nodes_reusable_after_gc(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        bdd.gc()  # f is garbage
        g = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.eval(g, {"a": 1, "b": 1, "c": 0, "d": 0}) is True

    def test_deregister_root(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        bdd.register_root("f", f)
        bdd.deregister_root("f")
        bdd.deregister_root("not-there")  # no error
        assert bdd.gc() > 0

    def test_stats_shape(self, bdd):
        stats = bdd.stats()
        assert {"live_nodes", "allocated_nodes", "cache_entries",
                "variables", "gc_runs"} <= set(stats)


class TestSizeSemantics:
    def test_size_constants(self, bdd):
        assert bdd.size(bdd.false) == 1
        assert bdd.size(bdd.true) == 1

    def test_size_literal(self, bdd):
        assert bdd.size(bdd.var("a")) == 3  # one internal + both terminals

    def test_size_cube_reaches_both_terminals(self, bdd):
        cube = bdd.cube(["a", "b", "c"])
        assert bdd.size(cube) == 5

    def test_shared_size_of_constants(self, bdd):
        assert bdd.size([bdd.true, bdd.false]) == 2

    def test_var_population(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.var_population("a") == 2  # literal a and the conjunction
        assert bdd.var_population("b") == 1
        assert bdd.var_population("c") == 0
        del f


class TestSelfManagement:
    def test_knob_validation(self):
        with pytest.raises(BddError):
            BDD(auto_gc=0)
        with pytest.raises(BddError):
            BDD(cache_limit=-1)

    def test_gc_skips_cache_clear_when_nothing_freed(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        bdd.register_root("f", f)
        bdd.gc()  # collect any garbage from fixture setup
        a_idx = bdd.var_index("a")
        # Creates cache entries but no new nodes.
        bdd.restrict(f, {a_idx: True})
        cached = bdd.cache_size()
        assert cached > 0
        assert bdd.gc() == 0
        assert bdd.cache_size() == cached  # cache survived the no-op sweep

    def test_cache_limit_evicts(self):
        manager = BDD(cache_limit=4)
        for name in ("a", "b", "c", "d", "e", "f"):
            manager.add_var(name)
        f = manager.true
        for name in ("a", "b", "c", "d", "e", "f"):
            f = manager.and_(f, manager.var(name))
        assert manager.cache_evictions > 0
        assert manager.cache_size() <= 4
        env = {n: 1 for n in ("a", "b", "c", "d", "e", "f")}
        assert manager.eval(f, env) is True

    def test_cache_limit_preserves_correctness(self):
        def build(cache_limit):
            manager = BDD(cache_limit=cache_limit)
            vs = [manager.add_var(f"v{i}") for i in range(8)]
            f = manager.false
            for i in range(0, 8, 2):
                f = manager.or_(
                    f, manager.and_(manager.var(vs[i]), manager.var(vs[i + 1]))
                )
            return manager, f

        unlimited_mgr, unlimited = build(None)
        tiny_mgr, tiny = build(2)
        assert tiny_mgr.cache_evictions > 0
        care = [f"v{i}" for i in range(8)]
        assert (tiny_mgr.sat_count(tiny, care)
                == unlimited_mgr.sat_count(unlimited, care))

    def test_auto_gc_flags_and_maybe_gc_collects(self):
        manager = BDD(auto_gc=5)
        for name in ("a", "b", "c", "d"):
            manager.add_var(name)
        keep = manager.xor(manager.var("a"), manager.var("b"))
        manager.register_root("keep", keep)
        # Churn out garbage until the trigger fires.
        for _ in range(4):
            manager.conj([manager.var("a"), manager.var("c"), manager.var("d")])
        assert manager._gc_pending
        freed = manager.maybe_gc()
        assert freed > 0
        assert manager.gc_count == 1
        assert not manager._gc_pending
        assert manager.eval(keep, {"a": 1, "b": 0, "c": 0, "d": 0}) is True

    def test_maybe_gc_noop_without_flag(self, bdd):
        bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.maybe_gc() == 0
        assert bdd.gc_count == 0

    def test_auto_gc_disabled_by_default(self, bdd):
        for _ in range(50):
            bdd.conj([bdd.var("a"), bdd.var("c"), bdd.var("d")])
        assert not bdd._gc_pending

    def test_register_root_group_replaces_prefix(self, bdd):
        f, g = bdd.var("a"), bdd.var("b")
        bdd.register_root_group("grp", [f, g])
        assert bdd._roots["grp.0"] == f
        assert bdd._roots["grp.1"] == g
        bdd.register_root_group("grp", [g])
        assert bdd._roots["grp.0"] == g
        assert "grp.1" not in bdd._roots

    def test_cache_stats_counts_hits(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        bdd.and_(a, b)
        bdd.clear_cache()
        f = bdd.and_(a, b)
        assert bdd.and_(a, b) == f  # pure cache hit
        stats = bdd.cache_stats()["and"]
        assert stats["lookups"] >= 2
        assert stats["hits"] >= 1
        assert 0.0 < stats["hit_rate"] <= 1.0
        assert 0.0 < bdd.cache_hit_rate() <= 1.0

    def test_stats_has_telemetry_keys(self, bdd):
        stats = bdd.stats()
        assert {"cache_evictions", "peak_live_nodes"} <= set(stats)
        assert stats["peak_live_nodes"] >= 2
