"""Frontier-batched apply: batched == scalar, handle for handle.

The batched engine (``repro.bdd.batch``) shares the scalar path's
unique table and computed cache, so for equal functions it must return
*identical handles*, not merely equivalent BDDs.  These tests pin that
down against the exhaustive truth-table oracle, across random op DAGs,
under a one-entry computed cache, through mid-batch table growth and
tombstone pressure, and for every consumer routed through the engine
(transfer, encode, image schedules).
"""

import os
import random

import pytest

from repro.bdd import BDD
from repro.bdd.manager import FALSE, TRUE, BddError
from repro.bdd.ops import transfer
from repro.oracle.truthtable import TruthTable

N = 5


def fresh(**kwargs) -> BDD:
    bdd = BDD(**kwargs)
    for i in range(N):
        bdd.add_var(f"v{i}")
    return bdd


def random_pool(bdd: BDD, rng: random.Random, steps: int = 18):
    """Grow a random op DAG, tracking the truth table of every node."""
    pool = [
        (bdd.false, TruthTable.false(N)),
        (bdd.true, TruthTable.true(N)),
    ]
    pool += [(bdd.var(i), TruthTable.var(N, i)) for i in range(N)]
    for _ in range(steps):
        (f, tf), (g, tg), (h, th) = (
            pool[rng.randrange(len(pool))] for _ in range(3)
        )
        op = rng.choice(["and", "or", "xor", "ite", "and_exists"])
        if op == "ite":
            pool.append((bdd.ite(f, g, h), tf.ite(tg, th)))
        elif op == "and_exists":
            qvars = rng.sample(range(N), rng.randint(1, N - 1))
            pool.append((bdd.and_exists(f, g, qvars), tf.and_exists(tg, qvars)))
        else:
            node = {"and": bdd.and_, "or": bdd.or_, "xor": bdd.xor}[op](f, g)
            table = {"and": tf & tg, "or": tf | tg, "xor": tf ^ tg}[op]
            pool.append((node, table))
    return pool


def assert_matches_oracle(bdd: BDD, node: int, table: TruthTable, what: str):
    for a in range(1 << N):
        assignment = {j: bool((a >> j) & 1) for j in range(N)}
        assert bdd.eval(node, assignment) == table.eval(a), (
            f"{what}: disagrees with oracle at {a:0{N}b}"
        )


class TestIteMany:
    def test_handle_identical_to_looped_ite(self):
        rng = random.Random(7)
        bdd = fresh()
        pool = random_pool(bdd, rng)
        triples = [
            tuple(pool[rng.randrange(len(pool))][0] for _ in range(3))
            for _ in range(40)
        ]
        batched = bdd.ite_many(triples)
        scalar = [bdd.ite(f, g, h) for f, g, h in triples]
        assert batched == scalar

    def test_matches_truth_table_oracle(self):
        rng = random.Random(11)
        bdd = fresh()
        pool = random_pool(bdd, rng)
        picks = [
            tuple(pool[rng.randrange(len(pool))] for _ in range(3))
            for _ in range(30)
        ]
        results = bdd.ite_many(
            [(f[0], g[0], h[0]) for f, g, h in picks]
        )
        for node, ((_, tf), (_, tg), (_, th)) in zip(results, picks):
            assert_matches_oracle(bdd, node, tf.ite(tg, th), "ite_many")

    def test_cross_manager_parity(self):
        """Opposite-knob managers, same requests: same functions and
        node counts.  (Raw handle values are only canonical within one
        unique table — allocation order differs across managers — so
        equality is asserted per-function via the oracle and sizes.)"""
        rng1, rng2 = random.Random(3), random.Random(3)
        batched, scalar = fresh(batch_apply=True), fresh(batch_apply=False)
        p1 = random_pool(batched, rng1)
        p2 = random_pool(scalar, rng2)
        assert [n for n, _ in p1] == [n for n, _ in p2]
        assert len(batched) == len(scalar)
        reqs = [
            (rng1.randrange(len(p1)), rng1.randrange(len(p1)),
             rng1.randrange(len(p1)))
            for _ in range(25)
        ]
        got = batched.ite_many([(p1[a][0], p1[b][0], p1[c][0])
                                for a, b, c in reqs])
        want = scalar.ite_many([(p2[a][0], p2[b][0], p2[c][0])
                                for a, b, c in reqs])
        for (a, b, c), gn, wn in zip(reqs, got, want):
            table = p1[a][1].ite(p1[b][1], p1[c][1])
            assert_matches_oracle(batched, gn, table, "batched")
            assert_matches_oracle(scalar, wn, table, "scalar")
            assert batched.size(gn) == scalar.size(wn)
        assert batched.batch_calls >= 1
        assert scalar.batch_calls == 0
        assert scalar.batch_scalar_requests >= 25

    def test_in_frontier_duplicates_dedupe(self):
        bdd = fresh()
        f, g = bdd.var(0), bdd.var(3)
        results = bdd.ite_many([(f, g, bdd.false)] * 64)
        assert len(set(results)) == 1
        assert results[0] == bdd.and_(f, g)


class TestApplyMany:
    def test_all_ops_match_scalar(self):
        rng = random.Random(19)
        bdd = fresh()
        pool = random_pool(bdd, rng)
        pairs = [
            (pool[rng.randrange(len(pool))][0], pool[rng.randrange(len(pool))][0])
            for _ in range(20)
        ]
        for op, scalar_fn in [
            ("and", bdd.and_), ("or", bdd.or_), ("xor", bdd.xor),
            ("xnor", bdd.xnor), ("implies", bdd.implies), ("diff", bdd.diff),
        ]:
            assert bdd.apply_many(op, pairs) == [
                scalar_fn(f, g) for f, g in pairs
            ], op

    def test_unknown_op_rejected(self):
        bdd = fresh()
        with pytest.raises(BddError):
            bdd.apply_many("nand", [(bdd.var(0), bdd.var(1))])


class TestAndExistsMany:
    def test_matches_scalar_and_oracle(self):
        rng = random.Random(23)
        bdd = fresh()
        pool = random_pool(bdd, rng)
        reqs, tables = [], []
        for _ in range(25):
            (f, tf), (g, tg) = (
                pool[rng.randrange(len(pool))] for _ in range(2)
            )
            qvars = rng.sample(range(N), rng.randint(1, N - 1))
            reqs.append((f, g, qvars))
            tables.append(tf.and_exists(tg, qvars))
        results = bdd.and_exists_many(reqs)
        for (f, g, qvars), node, table in zip(reqs, results, tables):
            assert node == bdd.and_exists(f, g, qvars)
            assert_matches_oracle(bdd, node, table, "and_exists_many")

    def test_exist_degenerate_form(self):
        """(TRUE, f, cube) requests are plain existential quantification."""
        rng = random.Random(29)
        bdd = fresh()
        pool = random_pool(bdd, rng)
        fs = [pool[rng.randrange(len(pool))][0] for _ in range(12)]
        got = bdd.and_exists_many([(bdd.true, f, [0, 2]) for f in fs])
        assert got == [bdd.exist([0, 2], f) for f in fs]


class TestRenameAndCompose:
    def test_rename_many_matches_scalar(self):
        rng = random.Random(31)
        bdd = fresh()
        pool = random_pool(bdd, rng)
        mapping = {0: 1, 3: 4}
        fs = [pool[rng.randrange(len(pool))][0] for _ in range(16)]
        safe = [f for f in fs
                if not ({0, 1, 3, 4} & set(bdd.support(f)) - {0, 3})]
        assert bdd.rename_many(safe, mapping) == [
            bdd.rename(f, mapping) for f in safe
        ]

    def test_rename_many_strict_violation_raises(self):
        bdd = fresh()
        f = bdd.and_(bdd.var(0), bdd.var(1))  # v1 occupied: swap collides
        with pytest.raises(BddError):
            bdd.rename_many([f, f], {0: 1})

    def test_rename_many_nonstrict_falls_back_to_compose(self):
        bdd = fresh()
        f = bdd.and_(bdd.var(0), bdd.var(1))
        got = bdd.rename_many([f, bdd.var(0)], {0: 1}, strict=False)
        assert got == [
            bdd.vector_compose(f, {0: bdd.var(1)}),
            bdd.var(1),
        ]

    def test_vector_compose_many_matches_scalar(self):
        rng = random.Random(37)
        bdd = fresh()
        pool = random_pool(bdd, rng)
        sub = {0: bdd.xor(bdd.var(1), bdd.var(2)), 4: bdd.and_(
            bdd.var(2), bdd.var(3))}
        fs = [pool[rng.randrange(len(pool))][0] for _ in range(16)]
        assert bdd.vector_compose_many(fs, sub) == [
            bdd.vector_compose(f, sub) for f in fs
        ]


class TestKernelHealthMidBatch:
    def test_cache_limit_one(self):
        """A one-entry computed cache still yields exact results."""
        rng = random.Random(41)
        bdd = fresh(cache_limit=1)
        pool = random_pool(bdd, rng, steps=10)
        picks = [
            tuple(pool[rng.randrange(len(pool))] for _ in range(3))
            for _ in range(20)
        ]
        results = bdd.ite_many([(f[0], g[0], h[0]) for f, g, h in picks])
        for node, ((_, tf), (_, tg), (_, th)) in zip(results, picks):
            assert_matches_oracle(bdd, node, tf.ite(tg, th), "cache_limit=1")

    def test_growth_and_tombstones_mid_batch(self):
        """Batched find-or-create across table growth and GC tombstones."""
        bdd = BDD()
        n = 12
        for i in range(n):
            bdd.add_var(f"v{i}")
        # Populate, then kill a large population to leave tombstones.
        junk = [
            bdd.and_(bdd.var(i), bdd.xor(bdd.var(j), bdd.var((j + 1) % n)))
            for i in range(n) for j in range(n)
        ]
        del junk
        bdd.gc()
        assert bdd._ut_filled >= bdd._ut_used  # tombstones may remain
        # One wide batch forcing fresh allocation (unique-table growth
        # happens inside _mk_many's pre-grow, mid-batch).
        triples = []
        expect = []
        for i in range(n - 1):
            for j in range(i + 1, n):
                triples.append((bdd.var(i), bdd.var(j), bdd.nvar(j)))
        results = bdd.ite_many(triples)
        for (f, g, h), node in zip(triples, results):
            assert node == bdd.ite(f, g, h)
        # Stored-then-regular canonical form holds over every live node.
        for idx in range(1, bdd.stats()["allocated_nodes"]):
            if bdd._var[idx] >= 0:
                assert bdd._hi[idx] & 1 == 0
        assert bdd.stats()["unique_used"] == len(bdd) - 2

    def test_no_gc_mid_frontier(self):
        """Auto-GC arms during a batch but only fires at safe points."""
        bdd = fresh(auto_gc=64)
        rng = random.Random(43)
        pool = random_pool(bdd, rng)
        before = bdd.stats()["gc_runs"]
        triples = [
            tuple(pool[rng.randrange(len(pool))][0] for _ in range(3))
            for _ in range(200)
        ]
        results = bdd.ite_many(triples)
        assert bdd.stats()["gc_runs"] == before  # deferred, not run inline
        bdd.maybe_gc(extra_roots=[n for n, _ in pool] + results)
        assert bdd.stats()["gc_runs"] > before
        # The collection kept every rooted result reachable and canonical.
        assert bdd.ite_many(triples) == results


class TestKnob:
    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("HSIS_BATCH_APPLY", "0")
        assert BDD().batch_apply is False
        monkeypatch.setenv("HSIS_BATCH_APPLY", "1")
        assert BDD().batch_apply is True
        monkeypatch.delenv("HSIS_BATCH_APPLY")
        assert BDD().batch_apply is True
        assert BDD(batch_apply=False).batch_apply is False

    def test_scalar_knob_produces_identical_results(self):
        rng = random.Random(47)
        off = fresh(batch_apply=False)
        pool = random_pool(off, rng)
        triples = [
            tuple(pool[rng.randrange(len(pool))][0] for _ in range(3))
            for _ in range(30)
        ]
        assert off.batch_calls == 0
        assert off.ite_many(triples) == [off.ite(f, g, h)
                                         for f, g, h in triples]
        assert off.batch_calls == 0

    def test_stats_exposed(self):
        from repro.bdd.batch import SCALAR_FRONTIER_CUTOFF

        bdd = fresh()
        # Distinct triples, wide enough to clear the scalar-fallback
        # cutoff so the wave engine actually runs a frontier.
        rng = random.Random(17)
        pool = random_pool(bdd, rng)
        funcs = [f for f, _ in pool]
        nreq = max(2 * SCALAR_FRONTIER_CUTOFF, 64)
        triples = [
            (funcs[rng.randrange(len(funcs))],
             funcs[rng.randrange(len(funcs))],
             funcs[rng.randrange(len(funcs))])
            for _ in range(nreq)
        ]
        bdd.ite_many(triples)
        s = bdd.stats()
        assert s["batch_calls"] == 1
        assert s["batch_requests"] == nreq
        assert s["batch_frontiers"] >= 1
        assert s["batch_max_width"] >= 1


class TestTransferBatched:
    def test_transfer_parity_and_permuted_order(self):
        rng = random.Random(53)
        src = fresh()
        pool = random_pool(src, rng)
        perm = list(range(N))
        rng.shuffle(perm)
        var_map = {i: perm[i] for i in range(N)}
        dst = fresh(batch_apply=True)
        for f, table in pool:
            hb = transfer(f, src, dst, var_map)
            # Same destination table: the scalar path must find every
            # node the batched copy created — identical handles.
            dst.batch_apply = False
            try:
                assert transfer(f, src, dst, var_map) == hb
            finally:
                dst.batch_apply = True
            for a in range(1 << N):
                assignment = {perm[j]: bool((a >> j) & 1) for j in range(N)}
                assert dst.eval(hb, assignment) == table.eval(a)


class TestConsumers:
    def test_encode_gallery_handle_parity(self):
        from repro.models import get_spec
        from repro.network.encode import encode

        for name in ("traffic", "railroad"):
            encs = {
                ba: encode(get_spec(name).flat(), batch_apply=ba)
                for ba in (True, False)
            }
            on, off = encs[True], encs[False]
            assert len(on.bdd) == len(off.bdd)
            assert len(on.conjuncts) == len(off.conjuncts)
            for ca, cb in zip(on.conjuncts, off.conjuncts):
                assert on.bdd.size(ca.node) == off.bdd.size(cb.node)
                assert ca.support == cb.support
            assert on.bdd.size(on.init) == off.bdd.size(off.init)

    def test_reachability_verdict_parity(self):
        from repro.models import get_spec
        from repro.network.fsm import SymbolicFsm

        flat = get_spec("traffic").flat()
        runs = {}
        for ba in (True, False):
            fsm = SymbolicFsm(flat, batch_apply=ba)
            reach = fsm.reachable(partitioned=True)
            runs[ba] = (
                fsm.count_states(reach.reached),
                reach.iterations,
                [fsm.count_states(r) for r in reach.rings],
            )
        assert runs[True] == runs[False]
