"""Tests for table encoding: BDD relations vs explicit row semantics."""

import itertools

import pytest

from repro.blifmv import BlifMvError, flatten, parse
from repro.network import SymbolicFsm, encode, is_deterministic_table, variable_order
from repro.network.encode import encode_table


def _model(text):
    return flatten(parse(text))


def _relation_pairs(net, table_index=0):
    """Enumerate (input values, output values) allowed by the encoded table."""
    model = net.model
    table = model.tables[table_index]
    bdd = net.bdd
    relation = net.conjuncts[table_index].node
    in_vars = [net.mdd[n] for n in table.inputs]
    out_vars = [net.mdd[n] for n in table.outputs]
    pairs = set()
    for ins in itertools.product(*(v.values for v in in_vars)):
        for outs in itertools.product(*(v.values for v in out_vars)):
            cube = bdd.true
            for var, value in zip(in_vars + out_vars, list(ins) + list(outs)):
                cube = bdd.and_(cube, var.literal(value))
            if bdd.and_(relation, cube) != bdd.false:
                pairs.add((ins, outs))
    return pairs


class TestTableEncoding:
    def test_function_table(self):
        net = encode(_model("""
.model m
.mv a 3
.mv o 3
.table a -> o
0 1
1 2
2 0
.end
"""))
        assert _relation_pairs(net) == {(("0",), ("1",)), (("1",), ("2",)),
                                        (("2",), ("0",))}

    def test_nondeterministic_rows(self):
        net = encode(_model("""
.model m
.table a -> o
0 (0,1)
1 1
.end
"""))
        assert _relation_pairs(net) == {(("0",), ("0",)), (("0",), ("1",)),
                                        (("1",), ("1",))}

    def test_any_input(self):
        net = encode(_model("""
.model m
.table a -> o
- 1
.end
"""))
        assert _relation_pairs(net) == {(("0",), ("1",)), (("1",), ("1",))}

    def test_default_applies_to_unmatched(self):
        net = encode(_model("""
.model m
.mv a 3
.table a -> o
.default 0
2 1
.end
"""))
        assert _relation_pairs(net) == {(("0",), ("0",)), (("1",), ("0",)),
                                        (("2",), ("1",))}

    def test_default_not_shadowing_explicit_nondeterminism(self):
        # An input matched by a row does NOT take the default.
        net = encode(_model("""
.model m
.table a -> o
.default 1
0 0
.end
"""))
        assert _relation_pairs(net) == {(("0",), ("0",)), (("1",), ("1",))}

    def test_equality_output(self):
        net = encode(_model("""
.model m
.mv a,o 3
.table a -> o
- =a
.end
"""))
        assert _relation_pairs(net) == {(("0",), ("0",)), (("1",), ("1",)),
                                        (("2",), ("2",))}

    def test_no_input_constant(self):
        net = encode(_model("""
.model m
.mv o 3
.table -> o
2
.end
"""))
        assert _relation_pairs(net) == {((), ("2",))}

    def test_invalid_codes_excluded(self):
        net = encode(_model("""
.model m
.mv a 3
.table a -> o
- 1
.end
"""))
        relation = net.conjuncts[0].node
        a = net.mdd["a"]
        # code 3 (the unused encoding) must not satisfy the relation
        bad = net.bdd.conj([net.bdd.var(a.bits[0]), net.bdd.var(a.bits[1])])
        assert net.bdd.and_(relation, bad) == net.bdd.false


class TestLatchEncoding:
    def test_latch_equality_conjunct(self):
        net = encode(_model("""
.model m
.mv s,n 3
.table s -> n
0 1
1 2
2 0
.latch n s
.reset s
0
.end
"""))
        labels = [c.label for c in net.conjuncts]
        assert any(label == "latch:s" for label in labels)

    def test_latch_domain_mismatch_rejected(self):
        with pytest.raises(BlifMvError):
            encode(_model("""
.model m
.mv s 3
.table s -> n
- 1
.latch n s
.reset s
0
.end
"""))

    def test_init_from_reset(self):
        net = encode(_model("""
.model m
.mv s,n 4
.table s -> n
- =s
.latch n s
.reset s
1 2
.end
"""))
        s = net.mdd["s"]
        assert net.bdd.sat_count(net.init, s.bits) == 2

    def test_empty_reset_means_any_value(self):
        net = encode(_model("""
.model m
.mv s,n 3
.table s -> n
- =s
.latch n s
.end
"""))
        s = net.mdd["s"]
        assert net.bdd.sat_count(net.init, s.bits) == 3


class TestDeterminism:
    def test_deterministic_table(self):
        model = _model("""
.model m
.table a -> o
0 1
1 0
.end
""")
        net = encode(model)
        assert is_deterministic_table(net.mdd, net.vars, model, model.tables[0])

    def test_nondeterministic_table(self):
        model = _model("""
.model m
.table a -> o
0 (0,1)
1 0
.end
""")
        net = encode(model)
        assert not is_deterministic_table(net.mdd, net.vars, model, model.tables[0])


class TestOrdering:
    def test_variable_order_covers_everything(self):
        model = _model("""
.model m
.mv s,n 3
.table s x -> n
- - =s
.latch n s
.reset s
0
.end
""")
        order = variable_order(model)
        assert set(order) == set(model.declared_variables())

    def test_declared_method(self):
        model = _model("""
.model m
.table a -> o
0 1
1 0
.end
""")
        net = encode(model, order_method="declared")
        assert net.order_method == "declared"
        with pytest.raises(ValueError):
            encode(model, order_method="bogus")

    def test_encode_rejects_hierarchy(self):
        design = parse("""
.model top
.subckt leaf u1
.end
.model leaf
.table a -> o
0 1
1 0
.end
""")
        with pytest.raises(BlifMvError):
            encode(design.root_model())
