"""Tests for the fair-cycle engine on hand-built graphs.

Graphs are encoded as tiny BLIF-MV machines so the engine is exercised
through exactly the same interface the checkers use.
"""

import pytest

from repro.automata.fairness import (
    BuchiEdge,
    BuchiState,
    FairnessSpec,
    NegativeStateSet,
    StreettPair,
)
from repro.blifmv import flatten, parse
from repro.lc.faircycle import (
    FairGraph,
    all_fair_states,
    effective_cycle_relation,
    fair_hull,
    find_fair_scc,
)
from repro.network import SymbolicFsm


def machine(rows, nvalues, reset="0"):
    """A one-latch machine with the given transition rows."""
    body = "\n".join(rows)
    text = f"""
.model g
.mv s,n {nvalues}
.table s -> n
{body}
.latch n s
.reset s
{reset}
"""
    fsm = SymbolicFsm(flatten(parse(text)))
    fsm.build_transition()
    return fsm


def states_of(fsm, bdd_set):
    return {s["s"] for s in fsm.states_iter(bdd_set)}


class TestNoFairness:
    def test_hull_is_infinite_path_closure(self):
        # 0 -> 1 -> 2 -> 1 (cycle {1,2}); 3 deadlocks.  The hull
        # (nu Z . EX Z) keeps exactly the states with an infinite path:
        # the cycle plus the transient state 0 leading into it.
        fsm = machine(["0 1", "1 2", "2 1"], 4)
        graph = FairGraph(fsm)
        spec = FairnessSpec().normalize(fsm.bdd, fsm.bdd.true)
        hull = fair_hull(graph, spec, fsm.bdd.true)
        assert states_of(fsm, hull) == {"0", "1", "2"}

    def test_find_fair_scc_plain_cycle(self):
        fsm = machine(["0 1", "1 2", "2 1"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec().normalize(fsm.bdd, fsm.bdd.true)
        scc = find_fair_scc(graph, spec, fsm.reachable().reached)
        assert scc is not None
        assert states_of(fsm, scc.states) == {"1", "2"}

    def test_self_loop_counts_as_cycle(self):
        fsm = machine(["0 0"], 2)
        graph = FairGraph(fsm)
        spec = FairnessSpec().normalize(fsm.bdd, fsm.bdd.true)
        scc = find_fair_scc(graph, spec, fsm.reachable().reached)
        assert scc is not None


class TestBuchi:
    def test_buchi_state_satisfiable(self):
        # cycle {1,2}; Büchi on state 2 is satisfiable
        fsm = machine(["0 1", "1 2", "2 1"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([BuchiState(fsm.var("s").literal("2"))])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        assert find_fair_scc(graph, norm, fsm.reachable().reached) is not None

    def test_buchi_state_unsatisfiable(self):
        # cycle {1,2}; Büchi on unreachable-in-cycle state 0
        fsm = machine(["0 1", "1 2", "2 1"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([BuchiState(fsm.var("s").literal("0"))])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        assert find_fair_scc(graph, norm, fsm.reachable().reached) is None

    def test_generalized_buchi_needs_all(self):
        # two disjoint cycles {1} and {2}; Büchi on 1 AND on 2 unsatisfiable
        fsm = machine(["0 (1,2)", "1 1", "2 2"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([
            BuchiState(fsm.var("s").literal("1")),
            BuchiState(fsm.var("s").literal("2")),
        ])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        assert find_fair_scc(graph, norm, fsm.reachable().reached) is None
        # each alone is satisfiable
        for value in ("1", "2"):
            single = FairnessSpec([BuchiState(fsm.var("s").literal(value))])
            assert find_fair_scc(
                graph, single.normalize(fsm.bdd, fsm.bdd.true),
                fsm.reachable().reached
            ) is not None

    def test_negative_state_set(self):
        # self-loops on 1 and 2; negative constraint on {1} kills cycle at 1
        fsm = machine(["0 (1,2)", "1 1", "2 2"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([NegativeStateSet(fsm.var("s").literal("1"))])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        scc = find_fair_scc(graph, norm, fsm.reachable().reached)
        assert scc is not None
        assert states_of(fsm, scc.states) == {"2"}

    def test_buchi_edge(self):
        # Büchi on the 1->2 edge: satisfied by the {1,2} cycle
        fsm = machine(["0 1", "1 2", "2 1", "2 2"], 3)
        graph = FairGraph(fsm)
        s, sn = fsm.var("s"), fsm.var("s#n")
        edge = fsm.bdd.and_(s.literal("1"), sn.literal("2"))
        spec = FairnessSpec([BuchiEdge(edge)])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        scc = find_fair_scc(graph, norm, fsm.reachable().reached)
        assert scc is not None
        assert states_of(fsm, scc.states) == {"1", "2"}


class TestStreett:
    def _edge(self, fsm, src, dst):
        return fsm.bdd.and_(fsm.var("s").literal(src),
                            fsm.var("s#n").literal(dst))

    def test_streett_satisfied_by_avoidance(self):
        # cycle {1,2}; pair (E=1->2 edge, F=unsat): cycle must avoid 1->2.
        # Alternative self loop on 2 avoids it.
        fsm = machine(["0 1", "1 2", "2 1", "2 2"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([
            StreettPair(e=self._edge(fsm, "1", "2"), f=fsm.bdd.false)
        ])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        scc = find_fair_scc(graph, norm, fsm.reachable().reached)
        assert scc is not None
        assert states_of(fsm, scc.states) == {"2"}

    def test_streett_unsatisfiable(self):
        # only cycle is 1->2->1; E = 1->2 unavoidable, F unsatisfiable
        fsm = machine(["0 1", "1 2", "2 1"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([
            StreettPair(e=self._edge(fsm, "1", "2"), f=fsm.bdd.false)
        ])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        assert find_fair_scc(graph, norm, fsm.reachable().reached) is None

    def test_streett_satisfied_by_f(self):
        # E = 1->2 unavoidable but F = 2->1 also taken: pair satisfied
        fsm = machine(["0 1", "1 2", "2 1"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([
            StreettPair(e=self._edge(fsm, "1", "2"), f=self._edge(fsm, "2", "1"))
        ])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        scc = find_fair_scc(graph, norm, fsm.reachable().reached)
        assert scc is not None
        # F must be listed as a required edge for the witness
        assert any(e != fsm.bdd.false for e, _l in scc.required_edges)

    def test_effective_relation_deletes_unsat_pairs(self):
        fsm = machine(["0 1", "1 2", "2 1", "2 2"], 3)
        graph = FairGraph(fsm)
        spec = FairnessSpec([
            StreettPair(e=self._edge(fsm, "1", "2"), f=fsm.bdd.false)
        ])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        t_eff, residual = effective_cycle_relation(graph, norm)
        assert not residual.streett
        assert fsm.bdd.and_(t_eff, self._edge(fsm, "1", "2")) == fsm.bdd.false

    def test_streett_edge_removal_recursion(self):
        # SCC {1,2,3}: 1->2->3->1, plus 2->2 self loop.
        # Pair (E = 3->1, F = unsat): must avoid 3->1; the surviving
        # subgraph has the 2->2 cycle.
        fsm = machine(["0 1", "1 2", "2 3", "2 2", "3 1"], 4)
        graph = FairGraph(fsm)
        spec = FairnessSpec([
            StreettPair(e=self._edge(fsm, "3", "1"), f=fsm.bdd.false)
        ])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        scc = find_fair_scc(graph, norm, fsm.reachable().reached, use_hull=False)
        assert scc is not None
        assert states_of(fsm, scc.states) <= {"1", "2", "3"}
        # the witness cycle cannot contain the deleted edge
        assert fsm.bdd.and_(scc.trans, self._edge(fsm, "3", "1")) == fsm.bdd.false


class TestFairStates:
    def test_all_fair_states_buchi(self):
        # 0 -> 1 -> 2 -> 1 and 0 -> 3 -> 3; Büchi on 2.
        fsm = machine(["0 (1,3)", "1 2", "2 1", "3 3"], 4)
        graph = FairGraph(fsm)
        spec = FairnessSpec([BuchiState(fsm.var("s").literal("2"))])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        fair = all_fair_states(graph, norm, fsm.bdd.true)
        assert states_of(fsm, fair) == {"0", "1", "2"}

    def test_all_fair_states_streett_exact(self):
        # state 3 self-loop uses E without F: not fair; {1,2} cycle is.
        fsm = machine(["0 (1,3)", "1 2", "2 1", "3 3"], 4)
        graph = FairGraph(fsm)
        e33 = fsm.bdd.and_(fsm.var("s").literal("3"), fsm.var("s#n").literal("3"))
        e12 = fsm.bdd.and_(fsm.var("s").literal("1"), fsm.var("s#n").literal("2"))
        spec = FairnessSpec([StreettPair(e=e33, f=e12)])
        norm = spec.normalize(fsm.bdd, fsm.bdd.true)
        fair = all_fair_states(graph, norm, fsm.bdd.true)
        assert states_of(fsm, fair) == {"0", "1", "2"}
