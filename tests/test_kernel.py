"""Complemented-edge kernel invariants (property-based).

The kernel stores handles as ``index << 1 | complement`` with the
then-edge of every stored node kept regular.  These tests pin the
consequences down:

* negation is an O(1) bit flip — an involution that allocates nothing,
* a function and its negation share one DAG (equal sizes),
* the stored-then-regular canonical form holds for every live node,
* results stay canonical and semantically correct versus the exhaustive
  truth-table oracle, through random operator DAGs, GC, and in-place
  dynamic reordering.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.oracle.truthtable import TruthTable

from tests.test_bdd_properties import (
    NAMES,
    all_envs,
    brute,
    build,
    exprs,
    fresh,
)


def tt_build(expr) -> TruthTable:
    """Evaluate the expression strategy's AST on the truth-table oracle."""
    n = len(NAMES)
    tag = expr[0]
    if tag == "var":
        return TruthTable.var(n, NAMES.index(expr[1]))
    if tag == "const":
        return TruthTable.true(n) if expr[1] else TruthTable.false(n)
    if tag == "not":
        return ~tt_build(expr[1])
    if tag == "and":
        return tt_build(expr[1]) & tt_build(expr[2])
    if tag == "or":
        return tt_build(expr[1]) | tt_build(expr[2])
    if tag == "xor":
        return tt_build(expr[1]) ^ tt_build(expr[2])
    if tag == "ite":
        return tt_build(expr[1]).ite(tt_build(expr[2]), tt_build(expr[3]))
    raise AssertionError(tag)


def assert_matches_table(bdd: BDD, f: int, table: TruthTable) -> None:
    for a in range(1 << table.n):
        env = {NAMES[j]: bool((a >> j) & 1) for j in range(table.n)}
        assert bdd.eval(f, env) == table.eval(a), (a, env)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_not_is_a_zero_allocation_involution(expr):
    bdd = fresh()
    f = build(bdd, expr)
    allocated = bdd.stats()["allocated_nodes"]
    calls = bdd.not_calls
    g = bdd.not_(f)
    h = bdd.not_(g)
    assert h == f  # involution
    assert g == f ^ 1  # literally a complement-bit flip
    assert bdd.stats()["allocated_nodes"] == allocated  # nothing allocated
    assert bdd.not_calls == calls + 2  # and the telemetry saw both flips


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_function_and_negation_share_one_dag(expr):
    bdd = fresh()
    f = build(bdd, expr)
    assert bdd.size(f) == bdd.size(bdd.not_(f))


@settings(max_examples=40, deadline=None)
@given(st.lists(exprs(), min_size=1, max_size=4))
def test_stored_then_edges_are_always_regular(expr_list):
    bdd = fresh()
    for expr in expr_list:
        build(bdd, expr)
    for idx in range(1, len(bdd._var)):
        if bdd._var[idx] < 0:  # freed slot
            continue
        assert bdd._hi[idx] & 1 == 0, (
            f"node {idx} stores a complemented then-edge"
        )


@settings(max_examples=40, deadline=None)
@given(exprs(), exprs())
def test_negation_canonicity_de_morgan(e1, e2):
    # not(a and b) must be the *same handle* as (not a) or (not b):
    # complement edges make De Morgan pairs structurally identical.
    bdd = fresh()
    a, b = build(bdd, e1), build(bdd, e2)
    assert bdd.not_(bdd.and_(a, b)) == bdd.or_(bdd.not_(a), bdd.not_(b))
    assert bdd.not_(bdd.or_(a, b)) == bdd.and_(bdd.not_(a), bdd.not_(b))


@settings(max_examples=30, deadline=None)
@given(exprs())
def test_matches_truthtable_oracle(expr):
    bdd = fresh()
    f = build(bdd, expr)
    assert_matches_table(bdd, f, tt_build(expr))


@settings(max_examples=20, deadline=None)
@given(st.lists(exprs(), min_size=2, max_size=5), st.randoms())
def test_reorder_preserves_semantics_and_canonicity(expr_list, rng):
    """In-place sifting keeps every rooted handle's function intact, and
    rebuilding an expression after the reorder lands on the same handle
    (canonicity holds under the *current* order)."""
    bdd = fresh()
    roots = [build(bdd, expr) for expr in expr_list]
    tables = [tt_build(expr) for expr in expr_list]
    for name_i, f in enumerate(roots):
        bdd.register_root(f"t.{name_i}", f)
    bdd.reorder_now()
    for f, table in zip(roots, tables):
        assert_matches_table(bdd, f, table)
    rebuilt = [build(bdd, expr) for expr in expr_list]
    assert rebuilt == roots


@settings(max_examples=20, deadline=None)
@given(exprs())
def test_sat_count_and_sat_iter_agree_after_reorder(expr):
    """Model counting and model enumeration must agree under whatever
    variable order the manager currently has (regression: rings decoded
    empty after dynamic reordering)."""
    bdd = fresh()
    f = build(bdd, expr)
    bdd.register_root("f", f)
    care = [bdd._var_of_name[n] for n in NAMES]
    before = bdd.sat_count(f, care)
    bdd.reorder_now()
    assert bdd.sat_count(f, care) == before
    models = list(bdd.sat_iter(f, care))
    assert len(models) == before
    for assignment in models:
        assert bdd.eval(f, {bdd.var_name(v): val for v, val in assignment.items()})


def test_auto_reorder_kicks_in_and_keeps_answers():
    """An end-to-end smoke: arm auto_reorder low, run a workload with
    maybe_gc safe points, and check the reorder actually fired without
    changing any registered root's brute-force semantics."""
    bdd = BDD(auto_reorder=16)
    for name in NAMES:
        bdd.add_var(name)
    a, b, c, d, e = (bdd.var(n) for n in NAMES)
    f = bdd.or_(bdd.and_(a, bdd.not_(b)), bdd.xor(c, bdd.and_(d, e)))
    g = bdd.ite(bdd.xor(a, e), bdd.or_(b, d), bdd.and_(bdd.not_(c), b))
    bdd.register_root("f", f)
    bdd.register_root("g", g)
    expected_f = {tuple(env.items()): bdd.eval(f, env) for env in all_envs()}
    expected_g = {tuple(env.items()): bdd.eval(g, env) for env in all_envs()}
    for _ in range(20):
        junk = bdd.xor(f, g)
        junk = bdd.and_(junk, bdd.or_(f, bdd.not_(g)))
        bdd.maybe_gc(extra_roots=[junk])
    assert bdd.stats()["reorder_runs"] >= 1
    for env in all_envs():
        assert bdd.eval(f, env) == expected_f[tuple(env.items())]
        assert bdd.eval(g, env) == expected_g[tuple(env.items())]
