"""Tests for automatic abstraction: cone of influence and freeing."""

import pytest

from repro.blifmv import BlifMvError, flatten, parse
from repro.ctl import ModelChecker, check_ctl
from repro.network import SymbolicFsm
from repro.network.abstraction import (
    cone_of_influence,
    freeing_abstraction,
    support_closure,
)

# Two independent subsystems: a counter (observed) and a big shifter
# (irrelevant to properties about the counter).
TWO_PARTS = """
.model two
.mv c,cn 4
.table c -> cn
0 1
1 2
2 3
3 0
.latch cn c
.reset c
0
.mv s0,s1,s2,s0n,s1n,s2n 4
.table s2 -> s0n
- =s2
.table s0 -> s1n
- =s0
.table s1 -> s2n
- =s1
.latch s0n s0
.reset s0
0
.latch s1n s1
.reset s1
1
.latch s2n s2
.reset s2
2
.end
"""

# The observed net depends on one latch which depends on another.
CHAINED = """
.model chained
.mv a,an 2
.mv b,bn 2
.table b -> an
- =b
.table b -> bn
0 1
1 0
.table a -> out
- =a
.mv out 2
.latch an a
.reset a
0
.latch bn b
.reset b
0
.end
"""


class TestSupportClosure:
    def test_closure_follows_latches(self):
        model = flatten(parse(CHAINED))
        closure = support_closure(model, ["out"])
        assert closure == {"out", "a", "an", "b", "bn"}

    def test_closure_of_independent_net(self):
        model = flatten(parse(TWO_PARTS))
        closure = support_closure(model, ["c"])
        assert "s0" not in closure
        assert closure == {"c", "cn"}


class TestConeOfInfluence:
    def test_reduction_drops_unrelated_latches(self):
        model = flatten(parse(TWO_PARTS))
        reduced, report = cone_of_influence(model, ["c"])
        assert report.kept_latches == ["c"]
        assert set(report.dropped_latches) == {"s0", "s1", "s2"}
        assert report.dropped_tables == 3

    def test_verdicts_preserved(self):
        model = flatten(parse(TWO_PARTS))
        reduced, _report = cone_of_influence(model, ["c"])
        for formula in ("AG !(c=3)", "EF c=3", "AG EF c=0"):
            full = check_ctl(SymbolicFsm(model), formula)
            small = check_ctl(SymbolicFsm(reduced), formula)
            assert full.holds == small.holds, formula

    def test_state_space_shrinks(self):
        model = flatten(parse(TWO_PARTS))
        reduced, _report = cone_of_influence(model, ["c"])
        full = SymbolicFsm(model)
        full.build_transition()
        small = SymbolicFsm(reduced)
        small.build_transition()
        assert small.count_states(small.reachable().reached) < \
            full.count_states(full.reachable().reached)

    def test_unknown_observable_rejected(self):
        model = flatten(parse(TWO_PARTS))
        with pytest.raises(BlifMvError):
            cone_of_influence(model, ["nothere"])

    def test_whole_cone_kept_when_needed(self):
        model = flatten(parse(CHAINED))
        reduced, report = cone_of_influence(model, ["out"])
        assert set(report.kept_latches) == {"a", "b"}
        assert report.dropped_latches == []


class TestFreeingAbstraction:
    def test_freed_net_ranges_over_domain(self):
        model = flatten(parse(CHAINED))
        abstract = freeing_abstraction(model, ["b"])
        fsm = SymbolicFsm(abstract)
        fsm.build_transition()
        reached = fsm.reachable().reached
        # 'a' can now become anything b could ever feed it
        values = {s["a"] for s in fsm.states_iter(reached)}
        assert values == {"0", "1"}

    def test_overapproximation_preserves_passing_invariants(self):
        # an invariant that holds for ALL values of the freed net still
        # holds after freeing
        model = flatten(parse(TWO_PARTS))
        abstract = freeing_abstraction(model, ["s0"])
        formula = "AG !(c=1 & c=2)"  # trivially true, counter-only
        assert check_ctl(SymbolicFsm(abstract), formula).holds
        assert check_ctl(SymbolicFsm(model), formula).holds

    def test_freeing_can_add_behaviour(self):
        model = flatten(parse(CHAINED))
        # concrete: a equals b delayed, so a=1 at even times impossible…
        # freed: b arbitrary, AG (a=0 | a=1) still fine but AG !(a=1 & b=0)
        # may break. Check a property that holds concretely, fails freed.
        concrete_holds = check_ctl(
            SymbolicFsm(model), "AG (b=1 -> AX a=1)")
        assert concrete_holds.holds
        abstract = freeing_abstraction(model, ["b"])
        freed = check_ctl(SymbolicFsm(abstract), "AG (b=1 -> AX a=1)")
        assert not freed.holds  # spurious failure: over-approximation

    def test_unknown_net_rejected(self):
        model = flatten(parse(CHAINED))
        with pytest.raises(BlifMvError):
            freeing_abstraction(model, ["zz"])

    def test_freed_latch_becomes_combinational(self):
        model = flatten(parse(CHAINED))
        abstract = freeing_abstraction(model, ["b"])
        assert all(latch.output != "b" for latch in abstract.latches)
