"""Tests for BDD export and inspection helpers."""

import itertools
import json

from repro.bdd import BDD
from repro.bdd.dump import level_profile, load, save, summarize, to_dot
from repro.bdd.manager import BddError


def setup():
    bdd = BDD()
    for name in ("a", "b", "c"):
        bdd.add_var(name)
    f = bdd.or_(bdd.and_(bdd.var("a"), bdd.var("b")), bdd.var("c"))
    return bdd, f


class TestDot:
    def test_structure(self):
        bdd, f = setup()
        dot = to_dot(bdd, {"f": f})
        assert dot.startswith("digraph")
        assert 'label="a"' in dot
        assert "style=dashed" in dot  # low edges
        assert "root_f" in dot

    def test_terminals_present(self):
        bdd, f = setup()
        dot = to_dot(bdd, {"f": f})
        assert 'f0 [label="0"' in dot
        assert 'f1 [label="1"' in dot

    def test_sanitized_names(self):
        bdd, f = setup()
        dot = to_dot(bdd, {"weird name!": f})
        assert "root_weird_name_" in dot

    def test_constant_root(self):
        bdd, _f = setup()
        dot = to_dot(bdd, {"t": bdd.true})
        assert "root_t -> f1" in dot


class TestComplementArcs:
    def test_complement_arc_rendered_as_odot(self):
        bdd, f = setup()
        g = bdd.not_(f)
        dot = to_dot(bdd, {"g": g})
        # The root arc into the shared DAG carries the complement mark.
        assert "arrowhead=odot" in dot

    def test_terminal_arcs_resolve_polarity_into_the_box(self):
        bdd, f = setup()
        dot = to_dot(bdd, {"f": f, "g": bdd.not_(f)})
        # Arcs into terminals never use odot: polarity picks the box.
        for line in dot.splitlines():
            if "-> f0" in line or "-> f1" in line:
                assert "odot" not in line, line

    def test_negation_adds_no_nodes_to_the_drawing(self):
        bdd, f = setup()
        plain = to_dot(bdd, {"f": f}).count(" [label=")
        both = to_dot(bdd, {"f": f, "g": bdd.not_(f)}).count(" [label=")
        # g shares every decision node with f; only the root line is new.
        assert both == plain + 1


class TestSaveLoad:
    def roundtrip(self, bdd, roots):
        payload = json.loads(json.dumps(save(bdd, roots)))  # force JSON trip
        fresh = BDD()
        return fresh, load(fresh, payload)

    def test_roundtrip_preserves_semantics_and_complements(self):
        bdd, f = setup()
        g = bdd.not_(f)
        fresh, restored = self.roundtrip(bdd, {"f": f, "g": g})
        assert set(restored) == {"f", "g"}
        assert restored["g"] == fresh.not_(restored["f"])
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip(("a", "b", "c"), bits))
            assert fresh.eval(restored["f"], env) == bdd.eval(f, env)
            assert fresh.eval(restored["g"], env) == bdd.eval(g, env)

    def test_roundtrip_into_same_manager_is_identity(self):
        bdd, f = setup()
        restored = load(bdd, save(bdd, {"f": f, "nf": bdd.not_(f)}))
        assert restored == {"f": f, "nf": bdd.not_(f)}

    def test_roundtrip_constants(self):
        bdd, _f = setup()
        fresh, restored = self.roundtrip(bdd, {"t": bdd.true, "z": bdd.false})
        assert restored["t"] == fresh.true
        assert restored["z"] == fresh.false

    def test_load_declares_missing_variables_in_saved_order(self):
        bdd, f = setup()
        payload = save(bdd, {"f": f})
        fresh = BDD()
        load(fresh, payload)
        assert [fresh.var_name(v) for v in fresh.order] == payload["order"]

    def test_load_is_canonical_under_a_different_order(self):
        bdd, f = setup()
        payload = save(bdd, {"f": f})
        fresh = BDD()
        for name in ("c", "b", "a"):  # reversed declaration order
            fresh.add_var(name)
        restored = load(fresh, payload)["f"]
        direct = fresh.or_(
            fresh.and_(fresh.var("a"), fresh.var("b")), fresh.var("c")
        )
        assert restored == direct

    def test_unknown_format_rejected(self):
        bdd, _f = setup()
        try:
            load(bdd, {"format": "bogus-9"})
        except BddError:
            pass
        else:
            raise AssertionError("expected BddError")


class TestProfileAndSummary:
    def test_level_profile_counts(self):
        bdd, f = setup()
        profile = level_profile(bdd, [f])
        assert sum(profile.values()) == bdd.size(f) - 2
        assert all(count >= 1 for count in profile.values())

    def test_summarize_mentions_roots(self):
        bdd, f = setup()
        text = summarize(bdd, {"f": f})
        assert "f:" in text
        assert "manager:" in text
