"""Tests for BDD export and inspection helpers."""

from repro.bdd import BDD
from repro.bdd.dump import level_profile, summarize, to_dot


def setup():
    bdd = BDD()
    for name in ("a", "b", "c"):
        bdd.add_var(name)
    f = bdd.or_(bdd.and_(bdd.var("a"), bdd.var("b")), bdd.var("c"))
    return bdd, f


class TestDot:
    def test_structure(self):
        bdd, f = setup()
        dot = to_dot(bdd, {"f": f})
        assert dot.startswith("digraph")
        assert 'label="a"' in dot
        assert "style=dashed" in dot  # low edges
        assert "root_f" in dot

    def test_terminals_present(self):
        bdd, f = setup()
        dot = to_dot(bdd, {"f": f})
        assert 'f0 [label="0"' in dot
        assert 'f1 [label="1"' in dot

    def test_sanitized_names(self):
        bdd, f = setup()
        dot = to_dot(bdd, {"weird name!": f})
        assert "root_weird_name_" in dot

    def test_constant_root(self):
        bdd, _f = setup()
        dot = to_dot(bdd, {"t": bdd.true})
        assert "root_t -> f1" in dot


class TestProfileAndSummary:
    def test_level_profile_counts(self):
        bdd, f = setup()
        profile = level_profile(bdd, [f])
        assert sum(profile.values()) == bdd.size(f) - 2
        assert all(count >= 1 for count in profile.values())

    def test_summarize_mentions_roots(self):
        bdd, f = setup()
        text = summarize(bdd, {"f": f})
        assert "f:" in text
        assert "manager:" in text
