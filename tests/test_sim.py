"""Tests for the state-based simulator."""

import pytest

from repro.blifmv import flatten, parse
from repro.network import SymbolicFsm
from repro.sim import Simulator

COUNTER = """
.model counter
.mv s,n 4
.table s -> n
0 1
1 2
2 3
3 0
.latch n s
.reset s
0
.end
"""

BRANCHY = """
.model branchy
.mv s,n 3
.table s -> n
0 (1,2)
1 0
2 0
.latch n s
.reset s
0
.end
"""

DEADLOCK = """
.model dead
.mv s,n 2
.table s -> n
0 1
.latch n s
.reset s
0
.end
"""


def fsm_for(text):
    return SymbolicFsm(flatten(parse(text)))


class TestLifecycle:
    def test_reset_to_initial(self):
        sim = Simulator(fsm_for(COUNTER))
        state = sim.reset()
        assert state == {"s": "0"}

    def test_reset_to_specific_state(self):
        sim = Simulator(fsm_for(COUNTER))
        state = sim.reset({"s": "2"})
        assert state == {"s": "2"}

    def test_step_follows_transition(self):
        sim = Simulator(fsm_for(COUNTER))
        sim.reset()
        assert sim.step() == {"s": "1"}
        assert sim.step() == {"s": "2"}

    def test_step_before_reset_rejected(self):
        sim = Simulator(fsm_for(COUNTER))
        with pytest.raises(ValueError):
            sim.step()
        with pytest.raises(ValueError):
            sim.successors()

    def test_initial_states_enumeration(self):
        sim = Simulator(fsm_for(BRANCHY))
        assert sim.initial_states() == [{"s": "0"}]


class TestChoices:
    def test_successors_enumerated(self):
        sim = Simulator(fsm_for(BRANCHY))
        sim.reset()
        succs = sim.successors()
        assert {s["s"] for s in succs} == {"1", "2"}

    def test_explicit_choice(self):
        sim = Simulator(fsm_for(BRANCHY))
        sim.reset()
        succs = sim.successors()
        chosen = sim.step(choice=0)
        assert chosen == succs[0]

    def test_choice_out_of_range(self):
        sim = Simulator(fsm_for(COUNTER))
        sim.reset()
        with pytest.raises(IndexError):
            sim.step(choice=5)

    def test_deadlock_detected(self):
        sim = Simulator(fsm_for(DEADLOCK))
        sim.reset()
        sim.step()  # to s=1, which has no row
        with pytest.raises(ValueError):
            sim.step()


class TestRuns:
    def test_run_records_trace(self):
        sim = Simulator(fsm_for(COUNTER), seed=1)
        sim.reset()
        trace = sim.run(5)
        assert len(trace.states) == 6  # initial + 5 steps
        assert "0:" in trace.format()

    def test_run_with_policy(self):
        sim = Simulator(fsm_for(BRANCHY), seed=1)
        sim.reset()
        # always pick the successor with the smallest value
        sim.run(4, policy=lambda succs: min(
            range(len(succs)), key=lambda i: succs[i]["s"]))
        values = [s["s"] for s in sim.trace.states]
        assert values == ["0", "1", "0", "1", "0"]

    def test_visited_count(self):
        sim = Simulator(fsm_for(COUNTER), seed=0)
        sim.reset()
        sim.run(8)  # full cycle twice
        assert sim.visited_count() == 4

    def test_deterministic_with_seed(self):
        runs = []
        for _ in range(2):
            sim = Simulator(fsm_for(BRANCHY), seed=42)
            sim.reset()
            sim.run(6)
            runs.append([s["s"] for s in sim.trace.states])
        assert runs[0] == runs[1]

    def test_check_predicate(self):
        sim = Simulator(fsm_for(COUNTER))
        sim.reset()
        assert sim.check({"s": "0"})
        sim.step()
        assert not sim.check({"s": "0"})
