"""On-disk integrity coverage for the ``.hsis-cache`` result cache.

An entry is trusted only if its stored key matches its filename-key
and its ``result_sha`` digest re-derives from the result payload.
Anything less — truncation, bit rot, a hand-edited result — must be
detected, counted as corrupt, recomputed, and atomically rewritten.
The key itself must be sensitive to every result-affecting knob and
insensitive to request spelling (knob order, defaults written out).
"""

import asyncio
import json
import os

from repro.serve import HsisServer, ServeClient, cache_key, canonical_knobs
from repro.serve.cache import ResultCache, result_digest

STALL_BUDGET_SECONDS = 60.0


def serve_once(tmp_path, cache_dir, **submit_kwargs):
    """Boot a fresh server over ``cache_dir``, run one submission."""

    async def main():
        server = HsisServer(
            host="127.0.0.1", port=0, jobs=1, timeout=60.0,
            cache_dir=cache_dir,
        )
        await server.start()
        try:
            async with ServeClient(port=server.port) as client:
                result = await asyncio.wait_for(
                    client.submit(**submit_kwargs),
                    timeout=STALL_BUDGET_SECONDS,
                )
            return result, server.cache.snapshot(), \
                dict(server.stats.counters)
        finally:
            await server.stop()

    return asyncio.run(main())


def sole_entry_path(cache_dir):
    entries = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
    assert len(entries) == 1
    return os.path.join(cache_dir, entries[0])


SUBMIT = dict(kind="check", design={"gallery": "traffic"})


def verdict_core(result):
    """A check result minus its wall-clock noise, for cross-run equality."""
    return {
        "passed": result["passed"],
        "properties": result["properties"],
        "verdicts": [
            {k: v for k, v in verdict.items() if k != "seconds"}
            for verdict in result["verdicts"]
        ],
    }


class TestIntegrity:
    def test_tampered_result_is_detected_and_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first, _, _ = serve_once(tmp_path, cache_dir, **SUBMIT)
        assert first["ok"] and not first["cached"]

        path = sole_entry_path(cache_dir)
        with open(path) as handle:
            entry = json.load(handle)
        entry["result"]["passed"] = 999  # flip a verdict, keep the sha
        with open(path, "w") as handle:
            json.dump(entry, handle)

        second, cache, counters = serve_once(tmp_path, cache_dir, **SUBMIT)
        assert not second["cached"], "tampered entry was trusted"
        assert verdict_core(second["result"]) == verdict_core(first["result"])
        assert cache["corrupt"] == 1
        assert counters["serve.cache_corrupt"] == 1

        # The rewrite healed the entry: a third server trusts it again.
        third, cache3, _ = serve_once(tmp_path, cache_dir, **SUBMIT)
        assert third["cached"]
        assert verdict_core(third["result"]) == verdict_core(second["result"])
        assert cache3["corrupt"] == 0

    def test_truncated_entry_is_detected_and_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first, _, _ = serve_once(tmp_path, cache_dir, **SUBMIT)

        path = sole_entry_path(cache_dir)
        size = os.path.getsize(path)
        with open(path, "r+") as handle:
            handle.truncate(size // 2)

        second, cache, _ = serve_once(tmp_path, cache_dir, **SUBMIT)
        assert not second["cached"]
        assert verdict_core(second["result"]) == verdict_core(first["result"])
        assert cache["corrupt"] == 1

    def test_rewrite_is_atomic_no_temp_droppings(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        serve_once(tmp_path, cache_dir, **SUBMIT)
        path = sole_entry_path(cache_dir)
        with open(path, "w") as handle:
            handle.write("{ garbage")
        serve_once(tmp_path, cache_dir, **SUBMIT)
        # Only the healed entry remains: atomic_write_json's temp file
        # was renamed over it, never left beside it.
        assert sorted(os.listdir(cache_dir)) == [os.path.basename(path)]
        with open(path) as handle:
            healed = json.load(handle)
        assert healed["result_sha"] == result_digest(healed["result"])

    def test_load_counts_hits_misses_corrupt(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = "k" * 64
        assert cache.load(key) is None  # absent: miss, not corrupt
        cache.store(key, "check", {"passed": 1}, 0.5)
        assert cache.load(key)["result"] == {"passed": 1}
        with open(cache.path(key), "w") as handle:
            json.dump({"key": "wrong", "result": {}, "result_sha": ""},
                      handle)
        assert cache.load(key) is None
        assert cache.snapshot() == {
            "entries": 1, "hits": 1, "misses": 2, "corrupt": 1, "stores": 1,
            "evictions": 0,
        }


class TestEviction:
    """Size-capped LRU eviction (``--cache-max-mib``): stores sweep the
    directory down to the cap in mtime order, a load refreshes its
    entry's recency, and the entry just written is never the victim."""

    PAD = {"pad": "x" * 1000}

    def keys(self):
        return ["a" * 64, "b" * 64, "c" * 64]

    def fitted_cache(self, tmp_path, entries=2):
        """A cache whose cap fits exactly ``entries`` padded entries."""
        probe = ResultCache(str(tmp_path / "probe"))
        probe.store("p" * 64, "check", self.PAD, 0.0)
        size = os.path.getsize(probe.path("p" * 64))
        return ResultCache(
            str(tmp_path / "cache"), max_bytes=size * entries + size // 2
        )

    def age(self, cache, key, seconds_ago):
        """Backdate an entry's mtime (deterministic LRU order, no sleeps)."""
        import time

        stamp = time.time() - seconds_ago
        os.utime(cache.path(key), (stamp, stamp))

    def test_store_evicts_oldest_past_the_cap(self, tmp_path):
        cache = self.fitted_cache(tmp_path, entries=2)
        ka, kb, kc = self.keys()
        cache.store(ka, "check", self.PAD, 0.0)
        self.age(cache, ka, 100)
        cache.store(kb, "check", self.PAD, 0.0)
        self.age(cache, kb, 50)
        cache.store(kc, "check", self.PAD, 0.0)
        assert cache.load(ka) is None, "oldest entry survived the cap"
        assert cache.load(kb) is not None
        assert cache.load(kc) is not None
        assert cache.evictions == 1
        assert cache.snapshot()["evictions"] == 1
        assert cache.snapshot()["entries"] == 2

    def test_load_refreshes_recency(self, tmp_path):
        cache = self.fitted_cache(tmp_path, entries=2)
        ka, kb, kc = self.keys()
        cache.store(ka, "check", self.PAD, 0.0)
        cache.store(kb, "check", self.PAD, 0.0)
        self.age(cache, ka, 100)
        self.age(cache, kb, 50)
        assert cache.load(ka) is not None  # touch: ka becomes newest
        cache.store(kc, "check", self.PAD, 0.0)
        assert cache.load(ka) is not None, "recently-used entry evicted"
        assert cache.load(kb) is None
        assert cache.evictions == 1

    def test_just_written_entry_is_never_the_victim(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), max_bytes=1)
        ka, kb, _ = self.keys()
        cache.store(ka, "check", self.PAD, 0.0)
        assert cache.load(ka) is not None, "cap smaller than one entry"
        cache.store(kb, "check", self.PAD, 0.0)
        assert cache.load(kb) is not None
        assert cache.load(ka) is None
        assert cache.evictions == 1

    def test_uncapped_cache_never_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        for key in self.keys():
            cache.store(key, "check", self.PAD, 0.0)
        assert cache.evictions == 0
        assert cache.snapshot()["entries"] == 3


class TestKeySensitivity:
    def test_result_affecting_knobs_fork_the_key(self):
        base = cache_key("check", "design", "pif",
                         canonical_knobs("check", {}))
        reordered = cache_key(
            "check", "design", "pif",
            canonical_knobs("check", {"auto_reorder": 5000}),
        )
        capped = cache_key(
            "check", "design", "pif",
            canonical_knobs("check", {"cache_limit": 4096}),
        )
        assert len({base, reordered, capped}) == 3

    def test_request_spelling_does_not_fork_the_key(self):
        implicit = cache_key("fuzz", None, None,
                             canonical_knobs("fuzz", {}))
        explicit = cache_key(
            "fuzz", None, None,
            canonical_knobs(
                "fuzz", {"trials": 25, "seed": 0, "auto_reorder": None}
            ),
        )
        assert implicit == explicit

    def test_design_pif_and_kind_all_participate(self):
        knobs = canonical_knobs("check", {})
        base = cache_key("check", "d", "p", knobs)
        assert cache_key("check", "d2", "p", knobs) != base
        assert cache_key("check", "d", "p2", knobs) != base
        assert cache_key("profile", "d", "p",
                         canonical_knobs("profile", {})) != base

    def test_knob_spelling_served_from_cache_end_to_end(self, tmp_path):
        """A resubmission with defaults spelled out explicitly hits the
        cache entry the implicit-defaults submission stored."""
        cache_dir = str(tmp_path / "cache")
        first, _, _ = serve_once(
            tmp_path, cache_dir, kind="fuzz", knobs={"trials": 2, "seed": 9}
        )
        second, _, _ = serve_once(
            tmp_path, cache_dir, kind="fuzz",
            knobs={"seed": 9, "trials": 2, "auto_reorder": None},
        )
        assert not first["cached"] and second["cached"]
        assert second["result"] == first["result"]
        # ...while a genuinely different knob recomputes.
        third, _, _ = serve_once(
            tmp_path, cache_dir, kind="fuzz", knobs={"trials": 3, "seed": 9}
        )
        assert not third["cached"]
