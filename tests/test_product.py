"""Tests for model-level product composition (system x monitor)."""

import pytest

from repro.blifmv import BlifMvError, flatten, parse
from repro.ctl import check_ctl
from repro.network import SymbolicFsm, compose

SYSTEM = """
.model sys
.mv s,n 2
.table s -> n
0 1
1 0
.table s -> out
- =s
.mv out 2
.latch n s
.reset s
0
.end
"""

# A monitor written as BLIF-MV, observing the system net 'out'.
MONITOR = """
.model watch
.inputs out
.mv out 2
.mv st,stn 2
.table out st -> stn
1 - 1
0 - =st
.latch stn st
.reset st
0
.end
"""


class TestCompose:
    def test_product_machine(self):
        system = flatten(parse(SYSTEM))
        monitor = flatten(parse(MONITOR))
        product = compose(system, monitor)
        fsm = SymbolicFsm(product)
        fsm.build_transition()
        # the monitor latch is namespaced
        names = {l.name for l in fsm.latches}
        assert names == {"s", "watch.st"}

    def test_monitor_observes_system(self):
        system = flatten(parse(SYSTEM))
        monitor = flatten(parse(MONITOR))
        fsm = SymbolicFsm(compose(system, monitor))
        # once out=1 has been seen, st latches to 1 forever
        result = check_ctl(fsm, "AG (watch.st=1 -> AX watch.st=1)")
        assert result.holds
        result = check_ctl(fsm, "AF watch.st=1")
        assert result.holds  # out goes to 1 on the second tick

    def test_missing_nets_rejected(self):
        system = flatten(parse(SYSTEM))
        monitor = flatten(parse("""
.model watch
.inputs nothere
.table nothere -> x
- 1
.end
"""))
        with pytest.raises(BlifMvError) as err:
            compose(system, monitor)
        assert "nothere" in str(err.value)

    def test_hierarchical_inputs_rejected(self):
        design = parse(SYSTEM)
        hier = parse("""
.model top
.subckt x u1
.end
.model x
.end
""")
        with pytest.raises(BlifMvError):
            compose(hier.root_model(), flatten(design))

    def test_custom_prefix(self):
        system = flatten(parse(SYSTEM))
        monitor = flatten(parse(MONITOR))
        product = compose(system, monitor, prefix="m0")
        names = {l.output for l in product.latches}
        assert "m0.st" in names
