"""Verdicts are a function of the design, never of the variable order.

The whole ordering portfolio rests on one invariant: feeding *any*
permutation of the declared variables to the encoder changes only how
big the BDDs get, never what they denote.  These property tests pin
that down — seeded random permutations and every portfolio heuristic
must reproduce the default order's CTL verdicts and reachable
state count (the sat-count of the reached set) on gallery designs —
and pin the guard rails: a non-permutation is rejected loudly at
encode time, and every heuristic emits a valid permutation.
"""

import random

import pytest

from repro.bdd.ordering import validate_permutation
from repro.blifmv import BlifMvError
from repro.ctl import ModelChecker
from repro.models import get_spec
from repro.network import SymbolicFsm, variable_order
from repro.ordering_portfolio import HEURISTICS, candidate_orders, order_for

PERMUTATION_SEEDS = (0, 1, 7, 23, 1994)


def shuffled(names, seed):
    order = list(names)
    random.Random(seed).shuffle(order)
    return order


def verdicts_and_count(flat, pif, order=None):
    """(CTL verdicts, reachable sat-count) under the given order."""
    fsm = SymbolicFsm(flat, order=order)
    checker = ModelChecker(fsm, fairness=pif.bind_fairness(fsm))
    verdicts = [
        (name, checker.check(formula).holds)
        for name, formula in pif.ctl_props
    ]
    count = fsm.count_states(fsm.reachable().reached)
    return verdicts, count


@pytest.fixture(scope="module")
def traffic():
    spec = get_spec("traffic")
    flat = spec.flat()
    return flat, spec.pif, verdicts_and_count(flat, spec.pif)


class TestPermutationInvariance:
    @pytest.mark.parametrize("seed", PERMUTATION_SEEDS)
    def test_random_permutation_preserves_verdicts_and_count(
        self, traffic, seed
    ):
        flat, pif, (base_verdicts, base_count) = traffic
        order = shuffled(flat.declared_variables(), seed)
        verdicts, count = verdicts_and_count(flat, pif, order=order)
        assert verdicts == base_verdicts
        assert count == base_count

    def test_explicit_order_is_installed_verbatim(self, traffic):
        """The mv variables come out in exactly the requested order
        (latch next-state shadows interleave right after their latch)."""
        flat, _, _ = traffic
        order = shuffled(flat.declared_variables(), 42)
        fsm = SymbolicFsm(flat, order=order)
        declared = [
            v.name for v in fsm.mdd.variables
            if not v.name.endswith("#n")
        ]
        assert declared == order

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_every_heuristic_preserves_verdicts_and_count(
        self, traffic, name
    ):
        flat, pif, (base_verdicts, base_count) = traffic
        order = order_for(flat, name)
        verdicts, count = verdicts_and_count(flat, pif, order=order)
        assert verdicts == base_verdicts
        assert count == base_count


class TestHeuristicsEmitPermutations:
    @pytest.mark.parametrize("design", ("traffic", "elevator", "rrarbiter"))
    def test_all_heuristics_are_valid_permutations(self, design):
        flat = get_spec(design).flat()
        declared = flat.declared_variables()
        for name in HEURISTICS:
            order = order_for(flat, name)
            assert validate_permutation(order, declared) is None, (
                f"{name} emitted an invalid order on {design}"
            )

    def test_seed_heuristic_is_the_engine_default(self):
        flat = get_spec("traffic").flat()
        assert order_for(flat, "seed") == variable_order(flat)

    def test_candidates_are_deduplicated_and_clamped(self):
        flat = get_spec("traffic").flat()
        candidates = candidate_orders(flat, 99)
        names = [name for name, _ in candidates]
        orders = [tuple(order) for _, order in candidates]
        assert 1 <= len(candidates) <= len(HEURISTICS)
        assert names[0] == "seed"
        assert len(set(orders)) == len(orders), "duplicate order raced"
        assert candidate_orders(flat, 1) == candidates[:1]

    def test_unknown_heuristic_is_rejected(self):
        flat = get_spec("traffic").flat()
        with pytest.raises(ValueError, match="unknown ordering heuristic"):
            order_for(flat, "nonesuch")


class TestBadOrdersRejected:
    def test_missing_variable_rejected(self, traffic):
        flat, _, _ = traffic
        order = list(flat.declared_variables())[:-1]
        with pytest.raises(BlifMvError, match="order rejected"):
            SymbolicFsm(flat, order=order)

    def test_duplicate_variable_rejected(self, traffic):
        flat, _, _ = traffic
        order = list(flat.declared_variables())
        order[-1] = order[0]
        with pytest.raises(BlifMvError, match="duplicate"):
            SymbolicFsm(flat, order=order)

    def test_undeclared_variable_rejected(self, traffic):
        flat, _, _ = traffic
        order = list(flat.declared_variables()) + ["nonesuch"]
        with pytest.raises(BlifMvError, match="order rejected"):
            SymbolicFsm(flat, order=order)
