"""Tracer and exporter behaviour: round trips, no-op guarantees, merge."""

import json

import pytest

from repro.models import get_spec
from repro.network import SymbolicFsm
from repro.perf import EngineStats
from repro.trace import (
    Tracer,
    load_chrome,
    read_jsonl,
    summary,
    to_chrome,
    validate_chrome,
    write_chrome,
    write_jsonl,
    write_trace,
)


def make_sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer", cat="phase", label="a"):
        tracer.instant("tick", cat="test", n=1)
        with tracer.span("inner", cat="phase") as span:
            tracer.instant("tick", cat="test", n=2)
            span.add(late=True)
    tracer.instant("lonely", cat="test")
    return tracer


# ----------------------------------------------------------------------
# Core tracer semantics
# ----------------------------------------------------------------------


def test_span_nesting_records_depth_and_duration():
    tracer = make_sample_tracer()
    by_name = {e["name"]: e for e in tracer.events if e["ph"] == "X"}
    assert by_name["outer"]["depth"] == 0
    assert by_name["inner"]["depth"] == 1
    assert by_name["inner"]["dur"] <= by_name["outer"]["dur"]
    assert by_name["inner"]["args"] == {"late": True}
    # Instants record the depth at emit time.
    ticks = [e for e in tracer.events if e["name"] == "tick"]
    assert [e["depth"] for e in ticks] == [1, 2]


def test_disabled_tracer_emits_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("outer", cat="phase"):
        tracer.instant("tick", n=1)
    with tracer.span("again") as span:
        span.add(x=1)
    assert len(tracer) == 0
    assert tracer.events == []


def test_disabled_tracer_span_is_shared_noop():
    tracer = Tracer(enabled=False)
    assert tracer.span("a") is tracer.span("b")


def test_absorb_remaps_tid_lanes():
    parent = Tracer()
    parent.instant("parent-event")
    worker = Tracer()
    worker.instant("worker-event")
    other = Tracer()
    other.instant("other-event")
    worker.absorb(other)  # worker now has lanes 0 and 1
    base = parent.absorb(worker)
    assert base == 1
    tids = {e["name"]: e["tid"] for e in parent.events}
    assert tids["parent-event"] == 0
    assert tids["worker-event"] == 1
    assert tids["other-event"] == 2
    # Absorbing into a disabled tracer still works (multi-hop relay).
    relay = Tracer(enabled=False)
    relay.absorb(parent)
    assert len(relay) == len(parent)


def test_absorb_self_and_empty_are_noops():
    tracer = Tracer()
    tracer.instant("x")
    assert tracer.absorb(tracer) == -1
    assert tracer.absorb(Tracer()) == -1
    assert len(tracer) == 1


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    tracer = make_sample_tracer()
    path = str(tmp_path / "trace.jsonl")
    count = write_jsonl(tracer, path)
    assert count == len(tracer)
    assert read_jsonl(path) == tracer.events


def test_chrome_export_is_spec_valid(tmp_path):
    tracer = make_sample_tracer()
    path = str(tmp_path / "trace.json")
    count = write_chrome(tracer, path)
    assert count == len(tracer)
    payload = load_chrome(path)
    assert validate_chrome(payload) == []
    events = payload["traceEvents"]
    assert events[0]["ph"] == "M"  # process_name metadata first
    # Timestamps are normalized to the earliest event and in microseconds.
    times = [e["ts"] for e in events[1:]]
    assert min(times) == 0.0
    spans = [e for e in events if e["ph"] == "X"]
    assert all("dur" in e for e in spans)
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)


def test_validate_chrome_flags_bad_events():
    assert validate_chrome({}) == ["traceEvents is missing or not a list"]
    payload = {
        "traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 0},  # no dur
            {"name": "b", "ph": "i", "ts": 0, "pid": 1, "tid": 0},  # no scope
            {"ph": "i", "ts": 0, "pid": 1, "tid": 0, "s": "t"},  # no name
        ]
    }
    problems = validate_chrome(payload)
    assert len(problems) == 3


def test_summary_reconstructs_span_tree():
    text = summary(make_sample_tracer())
    lines = text.splitlines()
    outer_at = next(i for i, l in enumerate(lines) if l.strip().startswith("outer"))
    inner_at = next(i for i, l in enumerate(lines) if l.strip().startswith("inner"))
    assert inner_at > outer_at
    # inner is indented deeper than outer.
    indent = lambda l: len(l) - len(l.lstrip())
    assert indent(lines[inner_at]) > indent(lines[outer_at])
    assert "* tick x1" in text  # one tick per nesting level
    assert "* lonely x1" in text


def test_write_trace_dispatches_on_extension(tmp_path):
    tracer = make_sample_tracer()
    assert write_trace(tracer, str(tmp_path / "t.jsonl")) == "jsonl"
    assert write_trace(tracer, str(tmp_path / "t.txt")) == "summary"
    assert write_trace(tracer, str(tmp_path / "t.json")) == "chrome"
    # The chrome file parses as JSON and validates.
    payload = json.loads((tmp_path / "t.json").read_text())
    assert validate_chrome(payload) == []


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def traffic_flat():
    return get_spec("traffic").flat()


def test_engine_pipeline_emits_expected_spans(traffic_flat):
    tracer = Tracer()
    fsm = SymbolicFsm(traffic_flat, tracer=tracer)
    fsm.build_transition()
    fsm.reachable()
    names = {e["name"] for e in tracer.events}
    assert {"encode", "build_tr", "reach"} <= names
    assert "quantify.step" in names
    assert "reach.ring" in names
    rings = [e for e in tracer.events if e["name"] == "reach.ring"]
    assert rings, "per-ring instants missing"
    for ring in rings:
        assert ring["args"]["frontier_nodes"] > 0
        assert ring["args"]["reached_states"] >= ring["args"]["frontier_states"]


def test_engine_without_tracer_stays_silent(traffic_flat):
    fsm = SymbolicFsm(traffic_flat)
    fsm.build_transition()
    fsm.reachable()
    assert len(fsm.stats.tracer) == 0


def test_stats_merge_absorbs_worker_events():
    worker = EngineStats()
    worker.tracer = Tracer()
    with worker.phase("reach"):
        worker.tracer.instant("reach.ring", depth=1)
    detached = EngineStats()
    detached.merge(worker)  # relay hop with a disabled tracer
    parent = EngineStats()
    parent.tracer = Tracer()
    parent.merge(detached)
    names = [e["name"] for e in parent.tracer.events]
    assert "reach" in names and "reach.ring" in names
    tids = {e["tid"] for e in parent.tracer.events}
    # Each relay hop shifts the lane; the events end on one shared lane
    # distinct from the parent's own (tid 0).
    assert len(tids) == 1 and 0 not in tids


def test_stats_merge_shared_tracer_does_not_duplicate():
    shared = Tracer()
    a = EngineStats()
    a.tracer = shared
    b = EngineStats()
    b.tracer = shared
    shared.instant("once")
    a.merge(b)
    assert len(shared) == 1
