"""Tests for the Property Intermediate Format parser and binding."""

import pytest

from repro.automata import BuchiEdge, BuchiState, NegativeStateSet, StreettPair
from repro.blifmv import flatten, parse
from repro.ctl.ast import AG, Atom
from repro.network import SymbolicFsm
from repro.pif import PifError, formula_to_guard, parse_pif

TOGGLE = """
.model toggle
.mv s,n 2
.table s -> n
- (0,1)
.latch n s
.reset s
0
.end
"""


def fsm():
    machine = SymbolicFsm(flatten(parse(TOGGLE)))
    machine.build_transition()
    return machine


class TestCtlProps:
    def test_named_formula(self):
        pif = parse_pif("ctl safe :: AG !(s=1)")
        assert pif.ctl_props == [("safe", AG(Atom("s", ("1",)).__invert__()))] or \
            str(pif.ctl_props[0][1]) == "AG !s=1"
        assert pif.ctl_props[0][0] == "safe"

    def test_multiple_props(self):
        pif = parse_pif("ctl a :: s=0\nctl b :: s=1\n")
        assert [name for name, _ in pif.ctl_props] == ["a", "b"]

    def test_missing_separator(self):
        with pytest.raises(PifError):
            parse_pif("ctl just_a_name AG s=1")


class TestAutomata:
    TEXT = """
automaton watch
  states A B
  initial A
  edge A A :: !(s=1)
  edge A B :: s=1
  edge B B
  accept invariance A
end
"""

    def test_structure(self):
        pif = parse_pif(self.TEXT)
        aut = pif.automaton("watch")
        assert aut.states == ["A", "B"]
        assert aut.initial == ["A"]
        assert len(aut.edges) == 3
        assert len(aut.rabin_pairs) == 1

    def test_unknown_automaton(self):
        pif = parse_pif(self.TEXT)
        with pytest.raises(PifError):
            pif.automaton("nope")

    def test_recurrence_acceptance(self):
        pif = parse_pif("""
automaton r
  states A B
  initial A
  edge A B
  edge B A
  accept recurrence A->B, B->A
end
""")
        fin, inf = pif.automaton("r").rabin_pairs[0]
        assert fin == frozenset()
        assert inf == {("A", "B"), ("B", "A")}

    def test_rabin_acceptance(self):
        pif = parse_pif("""
automaton r
  states A B
  initial A
  edge A B
  edge B A
  accept rabin fin { A->B } inf { B->A }
end
""")
        fin, inf = pif.automaton("r").rabin_pairs[0]
        assert fin == {("A", "B")}
        assert inf == {("B", "A")}

    def test_missing_end(self):
        with pytest.raises(PifError):
            parse_pif("automaton a\n  states A\n  initial A\n")

    def test_bad_edge_line(self):
        with pytest.raises(PifError):
            parse_pif("automaton a\n states A\n initial A\n edge A\nend")

    def test_bad_acceptance(self):
        with pytest.raises(PifError):
            parse_pif(
                "automaton a\n states A\n initial A\n edge A A\n"
                " accept sometimes A\nend")


class TestFairness:
    def test_negative(self):
        pif = parse_pif("fairness negative :: s=0")
        machine = fsm()
        spec = pif.bind_fairness(machine)
        assert len(spec) == 1
        assert isinstance(spec.constraints[0], NegativeStateSet)
        assert spec.constraints[0].states == machine.var("s").literal("0")

    def test_buchi(self):
        pif = parse_pif("fairness buchi :: s=1")
        spec = pif.bind_fairness(fsm())
        assert isinstance(spec.constraints[0], BuchiState)

    def test_edge_with_primed_vars(self):
        pif = parse_pif("fairness edge :: s=0 & s'=1")
        machine = fsm()
        spec = pif.bind_fairness(machine)
        assert isinstance(spec.constraints[0], BuchiEdge)
        expected = machine.bdd.and_(
            machine.var("s").literal("0"), machine.var("s#n").literal("1"))
        assert spec.constraints[0].edges == expected

    def test_streett(self):
        pif = parse_pif("fairness streett :: s=0 ; s=1")
        spec = pif.bind_fairness(fsm())
        assert isinstance(spec.constraints[0], StreettPair)

    def test_streett_needs_two_parts(self):
        with pytest.raises(PifError):
            parse_pif("fairness streett :: s=0")

    def test_unknown_kind(self):
        with pytest.raises(PifError):
            parse_pif("fairness wishful :: s=0")


class TestGuardConversion:
    def test_temporal_rejected(self):
        from repro.ctl import parse_ctl
        with pytest.raises(PifError):
            formula_to_guard(parse_ctl("AG s=1"))

    def test_connectives(self):
        from repro.ctl import parse_ctl
        machine = fsm()
        for text in ("s=0 & s=1", "s=0 | s=1", "!(s=0)", "s=0 -> s=1",
                     "s=0 <-> s=1", "TRUE", "FALSE"):
            guard = formula_to_guard(parse_ctl(text))
            node = guard.to_bdd(machine)  # compiles without error
            assert isinstance(node, int)

    def test_comments_and_blank_lines(self):
        pif = parse_pif("""
# a comment

ctl a :: s=1  # trailing comment

""")
        assert len(pif.ctl_props) == 1

    def test_unexpected_line(self):
        with pytest.raises(PifError):
            parse_pif("hello world")
