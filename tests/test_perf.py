"""Tests for kernel self-management and the EngineStats telemetry.

Covers the three tentpole behaviours of the self-managing kernel:

* recursion safety — deep-chain BDDs (1000+ variables) run through the
  explicit-stack operators without ``RecursionError``,
* auto-GC at engine safe points — collections fire mid-fixpoint without
  invalidating registered roots, and results match the unmanaged run,
* bounded computed cache — evictions occur and fixpoints stay correct.

Plus the :mod:`repro.perf` aggregator itself.
"""

import pytest

from repro.bdd import BDD
from repro.blifmv import flatten, parse
from repro.ctl import check_ctl
from repro.network import SymbolicFsm
from repro.perf import EngineStats

COUNTER = """
.model counter
.mv s,n 8
.table s -> n
0 1
1 2
2 3
3 4
4 5
5 6
6 7
7 0
.latch n s
.reset s
0
.end
"""


def build(text, **kwargs):
    fsm = SymbolicFsm(flatten(parse(text)), **kwargs)
    fsm.build_transition()
    return fsm


# ----------------------------------------------------------------------
# Recursion safety: 1000-variable chains
# ----------------------------------------------------------------------

N_DEEP = 1000


@pytest.fixture(scope="module")
def deep():
    """A manager with 1000 chained variables and the full conjunction."""
    manager = BDD()
    vs = [manager.add_var(f"v{i}") for i in range(N_DEEP)]
    cube = manager.true
    for v in reversed(vs):
        cube = manager.and_(manager.var(v), cube)
    return manager, vs, cube


class TestDeepChains:
    def test_deep_and_chain(self, deep):
        manager, vs, cube = deep
        assert manager.size(cube) == N_DEEP + 2  # lo edges all hit FALSE

    def test_deep_not(self, deep):
        manager, vs, cube = deep
        neg = manager.not_(cube)
        assert manager.not_(neg) == cube

    def test_deep_ite(self, deep):
        manager, vs, cube = deep
        g = manager.ite(cube, manager.var(vs[0]), manager.false)
        assert g == cube  # cube implies v0

    def test_deep_exist(self, deep):
        manager, vs, cube = deep
        # Quantifying all but the first variable leaves the literal v0.
        rest = vs[1:]
        assert manager.exist(rest, cube) == manager.var(vs[0])

    def test_deep_and_exists(self, deep):
        manager, vs, cube = deep
        # Chain of xnors: v0 <-> v1 <-> ... <-> v999; quantifying the
        # middle leaves v0 <-> v999 semantics checked by evaluation.
        chain = manager.true
        for a, b in zip(vs, vs[1:]):
            chain = manager.and_(
                chain, manager.xnor(manager.var(a), manager.var(b))
            )
        mid = vs[1:-1]
        collapsed = manager.and_exists(chain, manager.true, mid)
        expected = manager.xnor(manager.var(vs[0]), manager.var(vs[-1]))
        assert collapsed == expected

    def test_deep_rename(self, deep):
        manager, vs, cube = deep
        # Identity rename walks the full depth through _rename.
        assert manager.rename(cube, {vs[0]: vs[0]}) == cube

    def test_deep_restrict_and_satcount(self, deep):
        manager, vs, cube = deep
        restricted = manager.restrict(cube, {vs[0]: True})
        assert manager.sat_count(restricted, vs) == 2


class TestDeepReachability:
    def test_1000_bit_chain_fsm_reachability(self):
        """A 1000-boolean-variable machine runs a reachability fixpoint
        through and_exists/rename/diff/or_ without RecursionError."""
        n = 500  # 500 interleaved x/y pairs = 1000 boolean variables
        manager = BDD()
        xs, ys = [], []
        for i in range(n):
            xs.append(manager.add_var(f"x{i}"))
            ys.append(manager.add_var(f"y{i}"))
        # Toggle machine: y_i = !x_i for every bit, init = all zeros.
        trans = manager.true
        for x, y in zip(reversed(xs), reversed(ys)):
            trans = manager.and_(
                trans, manager.xor(manager.var(x), manager.var(y))
            )
        init = manager.true
        for x in reversed(xs):
            init = manager.and_(manager.nvar(x), init)
        manager.register_root("trans", trans)
        x_cube = manager.cube(xs)
        y_to_x = {y: x for x, y in zip(xs, ys)}

        reached = init
        frontier = init
        iterations = 0
        while frontier != manager.false:
            nxt = manager.and_exists(trans, frontier, x_cube)
            step = manager.rename(nxt, y_to_x)
            frontier = manager.diff(step, reached)
            reached = manager.or_(reached, frontier)
            iterations += 1
            assert iterations <= 4
        # all-zeros and all-ones: the toggle machine has exactly 2
        # reachable states.
        assert manager.sat_count(reached, xs) == 2
        assert iterations == 2


# ----------------------------------------------------------------------
# Auto-GC at engine safe points
# ----------------------------------------------------------------------


class TestAutoGc:
    def test_auto_gc_fires_during_reachability(self):
        baseline = build(COUNTER)
        base_reach = baseline.reachable()
        managed = build(COUNTER, auto_gc=50)
        reach = managed.reachable()
        assert managed.bdd.gc_count > 0
        # Registered roots survived: the fixpoint matches the baseline.
        assert managed.count_states(reach.reached) == \
            baseline.count_states(base_reach.reached) == 8
        assert reach.converged

    def test_auto_gc_preserves_trans_and_init(self):
        fsm = build(COUNTER, auto_gc=25)
        fsm.reachable()
        # Usable after collections: another full fixpoint from scratch.
        again = fsm.reachable()
        assert fsm.count_states(again.reached) == 8

    def test_ctl_with_auto_gc_matches_default(self):
        plain = build(COUNTER)
        managed = build(COUNTER, auto_gc=40)
        for formula in ("EF s=5", "AG EX TRUE", "AF s=0"):
            assert (check_ctl(managed, formula).holds
                    == check_ctl(plain, formula).holds)
        assert managed.bdd.gc_count > 0


class TestCacheLimit:
    def test_fixpoint_matches_with_tiny_cache(self):
        unlimited = build(COUNTER)
        tiny = build(COUNTER, cache_limit=32)
        r_unlimited = unlimited.reachable()
        r_tiny = tiny.reachable()
        assert tiny.bdd.cache_evictions > 0
        assert (tiny.count_states(r_tiny.reached)
                == unlimited.count_states(r_unlimited.reached))
        assert r_tiny.iterations == r_unlimited.iterations


# ----------------------------------------------------------------------
# EngineStats
# ----------------------------------------------------------------------


class TestEngineStats:
    def test_phase_accumulates(self):
        stats = EngineStats()
        with stats.phase("work") as timer:
            pass
        assert timer.seconds >= 0.0
        with stats.phase("work"):
            pass
        assert stats.phases["work"].calls == 2
        assert stats.phase_seconds("work") >= timer.seconds
        assert stats.phase_seconds("absent") == 0.0

    def test_counters(self):
        stats = EngineStats()
        stats.bump("events")
        stats.bump("events", 4)
        assert stats.counters["events"] == 5

    def test_snapshot_with_bdd(self):
        manager = BDD()
        a = manager.add_var("a")
        b = manager.add_var("b")
        manager.and_(manager.var(a), manager.var(b))
        stats = EngineStats(manager)
        with stats.phase("p"):
            pass
        snap = stats.snapshot()
        assert snap["live_nodes"] >= 3
        assert "cache_hit_rate" in snap
        assert "and" in snap["op_cache"]
        assert snap["phases"]["p"]["calls"] == 1

    def test_format_mentions_key_numbers(self):
        fsm = build(COUNTER)
        fsm.reachable()
        text = fsm.stats.format()
        assert "nodes:" in text
        assert "hit rate" in text
        assert "phase reach" in text
        assert "phase encode" in text

    def test_fsm_records_phases(self):
        fsm = build(COUNTER)
        result = fsm.reachable()
        assert fsm.stats.phase_seconds("encode") > 0.0
        assert fsm.stats.phase_seconds("build_tr") > 0.0
        assert result.seconds == pytest.approx(
            fsm.stats.phase_seconds("reach"))

    def test_checker_reuses_fsm_stats(self):
        fsm = build(COUNTER)
        result = check_ctl(fsm, "EF s=3")
        assert result.holds
        assert fsm.stats.phase_seconds("mc") > 0.0
        assert result.seconds == pytest.approx(fsm.stats.phase_seconds("mc"))
