"""Shape-aware hierarchy elaboration (docs/hierarchy.md).

Covers the shape-signature canonicalization, the elaborate/flatten
equivalence, the shared-shape encoder's substitution path (counters,
reachability parity, grouped partitioned schedules), and the three
hierarchy bugfixes that rode along with the feature:

* ``instance_tree`` raises :class:`BlifMvError` (not ``KeyError``) on
  unknown root or subcircuit models;
* ``_inline`` keeps the *first* writer of a source-location entry when
  a child port renames onto a parent net;
* a dangling child port whose fresh flat name collides with an
  existing net is rejected instead of silently merging drivers.
"""

import pytest

from repro.blifmv import (
    BlifMvError,
    Design,
    elaborate,
    flatten,
    parse,
    shape_signature,
)
from repro.blifmv.ast import Model, Subckt
from repro.blifmv.hierarchy import instance_tree
from repro.network.fsm import SymbolicFsm

CELL = """
.model cell
.inputs tin
.outputs tout
.mv st 3
.mv st_next 3
.table tin st -> st_next
0 0 0
1 0 1
0 1 1
1 1 2
- 2 0
.table st -> tout
0 0
1 0
2 1
.latch st_next st
.reset st
0
.end
"""


def ring(n: int) -> Design:
    """A ring of ``n`` identical cells under one top model."""
    lines = [".model top"]
    for i in range(n):
        prev = (i - 1) % n
        lines.append(
            f".subckt cell c{i} tin=link{prev} tout=link{i}"
        )
    lines.append(".end")
    return parse("\n".join(lines) + "\n" + CELL)


class TestShapeSignature:
    def test_isomorphic_models_share_a_digest(self):
        a = parse(CELL)
        renamed = CELL.replace("st", "zz").replace("tin", "qq")
        b = parse(renamed)
        design = Design(models={"cell": a.models["cell"],
                                "other": b.models["cell"]})
        da, _ = shape_signature(design, "cell")
        db, _ = shape_signature(design, "other")
        assert da == db

    def test_canonical_positions_align(self):
        a = parse(CELL)
        b = parse(CELL.replace("st", "zz").replace("tin", "qq"))
        design = Design(models={"cell": a.models["cell"],
                                "other": b.models["cell"]})
        _, canon_a = shape_signature(design, "cell")
        _, canon_b = shape_signature(design, "other")
        assert len(canon_a) == len(canon_b)
        # position i of both orders names the same structural net
        mapping = dict(zip(canon_a, canon_b))
        assert mapping["st"] == "zz"
        assert mapping["tin"] == "qq"

    def test_structural_change_forks_the_digest(self):
        a = parse(CELL)
        b = parse(CELL.replace(".reset st\n0", ".reset st\n1"))
        design = Design(models={"cell": a.models["cell"],
                                "other": b.models["cell"]})
        da, _ = shape_signature(design, "cell")
        db, _ = shape_signature(design, "other")
        assert da != db

    def test_unknown_model_raises(self):
        design = parse(CELL)
        with pytest.raises(BlifMvError, match="unknown model"):
            shape_signature(design, "nonesuch")


class TestElaborate:
    def test_flat_matches_flatten(self):
        design = ring(3)
        assert elaborate(design).flat == flatten(design)

    def test_instance_table(self):
        design = ring(3)
        elab = elaborate(design)
        # top + 3 cells, pre-order, top first
        assert [i.model for i in elab.instances] == ["top"] + ["cell"] * 3
        groups = elab.shape_groups()
        cells = [i for i in elab.instances if i.model == "cell"]
        assert len({i.shape for i in cells}) == 1
        assert len(groups[cells[0].shape]) == 3

    def test_table_slices_partition_the_flat_model(self):
        design = ring(3)
        elab = elaborate(design)
        covered = []
        for inst in elab.instances:
            covered.extend(range(*inst.tables))
        assert sorted(covered) == list(range(len(elab.flat.tables)))

    def test_renames_land_in_flat_model(self):
        elab = elaborate(ring(2))
        flat_names = set(elab.flat.declared_variables())
        for inst in elab.instances:
            for flat_name in inst.rename.values():
                assert flat_name in flat_names


class TestSharedShapeEncode:
    def test_substitution_counters_and_parity(self):
        design = ring(4)
        elab = elaborate(design)
        shared = SymbolicFsm(elab)
        shared.build_transition()
        reach_s = shared.reachable()
        plain = SymbolicFsm(flatten(design))
        plain.build_transition()
        reach_p = plain.reachable()
        assert shared.count_states(reach_s.reached) == \
            plain.count_states(reach_p.reached)
        assert reach_s.iterations == reach_p.iterations
        # top's shape + the cell shape: encoded once each, 3 substituted
        assert shared.network.shapes_encoded == 2
        assert shared.network.instances_substituted == 3
        assert shared.stats.counters["shapes_encoded"] == 2
        assert shared.stats.counters["instances_substituted"] == 3

    def test_partitioned_reach_uses_instance_groups(self):
        design = ring(3)
        elab = elaborate(design)
        shared = SymbolicFsm(elab)
        assert shared.network.conjunct_groups is not None
        # one group per instance that owns conjuncts (the bare top owns
        # none and is dropped)
        nonempty = [
            i for i in elab.instances
            if i.tables[0] < i.tables[1] or i.latches[0] < i.latches[1]
        ]
        assert len(shared.network.conjunct_groups) == len(nonempty)
        reach_s = shared.reachable(partitioned=True)
        plain = SymbolicFsm(flatten(design))
        reach_p = plain.reachable(partitioned=True)
        assert shared.count_states(reach_s.reached) == \
            plain.count_states(reach_p.reached)

    def test_single_instance_design_is_a_no_op(self):
        design = parse(CELL)
        elab = elaborate(design)
        fsm = SymbolicFsm(elab)
        assert fsm.network.shapes_encoded == 1
        assert fsm.network.instances_substituted == 0


class TestInstanceTreeErrors:
    def test_unknown_root_raises_blifmv_error(self):
        design = parse(CELL)
        with pytest.raises(BlifMvError, match="unknown root model"):
            instance_tree(design, "nonesuch")

    def test_unknown_child_model_raises_blifmv_error(self):
        top = Model(name="top")
        top.subckts.append(
            Subckt(model="ghost", instance="g", connections={})
        )
        cell = parse(CELL).models["cell"]
        design = Design(models={"top": top, "cell": cell}, root="top")
        with pytest.raises(BlifMvError, match="unknown subcircuit model"):
            instance_tree(design)

    def test_valid_tree_lists_instances(self):
        lines = instance_tree(ring(2))
        assert lines[0] == "top: top"
        assert any("c0" in line for line in lines[1:])


class TestSourcesFirstWriterWins:
    def test_parent_location_survives_port_rename(self):
        cell = parse(CELL).models["cell"]
        cell.sources["tout"] = "cell.mv line 4"
        top = Model(name="top")
        top.sources["wire0"] = "top.mv line 2"
        top.subckts.append(
            Subckt(model="cell", instance="c0",
                   connections={"tin": "wire0", "tout": "wire0"})
        )
        design = Design(models={"top": top, "cell": cell}, root="top")
        flat = flatten(design)
        # the child's entry renames onto wire0 but must not clobber the
        # parent's (the instantiating line is the useful one)
        assert flat.sources["wire0"] == "top.mv line 2"
        # entries with no parent writer still flow through, prefixed
        cell2 = parse(CELL).models["cell"]
        cell2.sources["st"] = "cell.mv line 9"
        design2 = Design(models={"top": top, "cell": cell2}, root="top")
        assert flatten(design2).sources["c0.st"] == "cell.mv line 9"


class TestDanglingPortCollision:
    def test_collision_with_parent_net_raises(self):
        cell = parse(CELL).models["cell"]
        top = Model(name="top")
        # a literal parent net named "c0.tout" collides with the fresh
        # net minted for instance c0's dangling tout port
        top.domains["c0.tout"] = ("0", "1")
        top.subckts.append(
            Subckt(model="cell", instance="c0", connections={"tin": "c0.tout"})
        )
        design = Design(models={"top": top, "cell": cell}, root="top")
        with pytest.raises(BlifMvError, match="dangling port"):
            flatten(design)

    def test_ordinary_dangling_ports_stay_fine(self):
        cell = parse(CELL).models["cell"]
        top = Model(name="top")
        top.subckts.append(
            Subckt(model="cell", instance="c0", connections={})
        )
        design = Design(models={"top": top, "cell": cell}, root="top")
        flat = flatten(design)
        names = set(flat.declared_variables())
        assert "c0.tin" in names
        assert "c0.tout" in names
