"""On-disk integrity coverage for the ``.hsis-orders`` order cache.

Mirrors ``test_serve_cache.py``: an entry is trusted only if its
``design_sha`` matches, its ``order_sha`` digest re-derives from the
stored order, and — unlike the result cache — the order is an exact
permutation of the live model's declared variables.  Anything less
(truncation, bit rot, a hand-edited order, an order raced on a
different design) must be detected, counted as corrupt, treated as a
miss, re-raced, and atomically rewritten.  A corrupt order cache can
therefore cost a race but never change a verdict.
"""

import json
import os

import pytest

from repro.blifmv import flatten, parse as parse_blifmv
from repro.ordering_portfolio import (
    OrderCache,
    design_digest,
    order_digest,
    run_portfolio_check,
)
from repro.perf import EngineStats
from repro.pif import parse_pif

BLIFMV = """
.model counter
.mv s,n 3
.table s -> n
0 1
1 2
2 0
.latch n s
.reset s
0
.end
"""

PIF = """
ctl can_reach_two :: EF s=2
ctl never_stuck :: AG EX TRUE
ctl bogus :: AG s=0
"""


@pytest.fixture(scope="module")
def flat():
    return flatten(parse_blifmv(BLIFMV))


@pytest.fixture(scope="module")
def pif():
    return parse_pif(PIF)


def names_of(flat):
    return flat.declared_variables()


def holds(verdicts):
    return [(v.name, v.holds) for v in verdicts]


class TestLoadValidation:
    def test_roundtrip_and_counts(self, tmp_path, flat):
        cache = OrderCache(str(tmp_path / "orders"))
        sha = design_digest(flat)
        names = names_of(flat)
        assert cache.load(sha, names) is None  # absent: miss, not corrupt
        cache.store(sha, "seed", list(names), margin_seconds=0.25)
        entry = cache.load(sha, names)
        assert entry["heuristic"] == "seed"
        assert entry["order"] == list(names)
        assert entry["margin_seconds"] == 0.25
        assert cache.snapshot() == {
            "entries": 1, "hits": 1, "misses": 1, "corrupt": 0, "stores": 1,
        }

    def test_tampered_order_is_corrupt(self, tmp_path, flat):
        """A reordered entry whose digest was not refreshed is rejected."""
        cache = OrderCache(str(tmp_path / "orders"))
        sha = design_digest(flat)
        names = list(names_of(flat))
        cache.store(sha, "seed", names)
        with open(cache.path(sha)) as handle:
            entry = json.load(handle)
        entry["order"] = list(reversed(entry["order"]))  # keep the sha
        with open(cache.path(sha), "w") as handle:
            json.dump(entry, handle)
        assert cache.load(sha, names) is None
        assert cache.corrupt == 1

    def test_nonpermutation_with_valid_digest_is_corrupt(
        self, tmp_path, flat
    ):
        """Even a digest-consistent entry is rejected when its order does
        not cover this design's variables — orders are only meaningful
        for the design they were raced on."""
        cache = OrderCache(str(tmp_path / "orders"))
        sha = design_digest(flat)
        names = list(names_of(flat))
        bogus = names[:-1]  # drop a variable, then store consistently
        cache.store(sha, "seed", bogus)
        with open(cache.path(sha)) as handle:
            entry = json.load(handle)
        assert entry["order_sha"] == order_digest(entry["order"])
        assert cache.load(sha, names) is None
        assert cache.corrupt == 1

    def test_wrong_design_sha_is_corrupt(self, tmp_path, flat):
        cache = OrderCache(str(tmp_path / "orders"))
        sha = design_digest(flat)
        names = list(names_of(flat))
        cache.store(sha, "seed", names)
        entry_path = cache.path(sha)
        other = "f" * 64
        os.rename(entry_path, cache.path(other))
        assert cache.load(other, names) is None
        assert cache.corrupt == 1

    def test_truncated_entry_is_corrupt(self, tmp_path, flat):
        cache = OrderCache(str(tmp_path / "orders"))
        sha = design_digest(flat)
        names = list(names_of(flat))
        cache.store(sha, "seed", names)
        path = cache.path(sha)
        with open(path, "r+") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert cache.load(sha, names) is None
        assert cache.corrupt == 1

    def test_garbage_entry_is_corrupt(self, tmp_path, flat):
        cache = OrderCache(str(tmp_path / "orders"))
        sha = design_digest(flat)
        with open(cache.path(sha), "w") as handle:
            handle.write("{ garbage")
        assert cache.load(sha, names_of(flat)) is None
        assert cache.corrupt == 1


class TestEndToEndHeal:
    def test_corrupt_entry_is_rerraced_healed_and_verdicts_unchanged(
        self, tmp_path, flat, pif
    ):
        orders_dir = str(tmp_path / "orders")
        cache = OrderCache(orders_dir)
        cold, prov_cold = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=2, cache=cache,
        )
        assert prov_cold["source"] == "race"
        assert cache.stores == 1

        sha = design_digest(flat)
        path = cache.path(sha)
        with open(path) as handle:
            entry = json.load(handle)
        entry["order"] = list(reversed(entry["order"]))  # keep the sha
        with open(path, "w") as handle:
            json.dump(entry, handle)

        healer = OrderCache(orders_dir)
        stats = EngineStats()
        again, prov_again = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=2, cache=healer,
            stats=stats,
        )
        assert prov_again["source"] == "race", "corrupt entry was trusted"
        assert holds(again) == holds(cold) == [
            ("can_reach_two", True),
            ("never_stuck", True),
            ("bogus", False),
        ]
        assert healer.corrupt == 1
        assert stats.counters["portfolio_cache_misses"] == 1

        # The re-race healed the entry atomically: one file, verified
        # digest, no temp droppings beside it.
        assert sorted(os.listdir(orders_dir)) == [os.path.basename(path)]
        with open(path) as handle:
            healed = json.load(handle)
        assert healed["order_sha"] == order_digest(healed["order"])

        warm = OrderCache(orders_dir)
        final, prov_final = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=2, cache=warm,
        )
        assert prov_final["source"] == "cache"
        assert warm.corrupt == 0 and warm.hits == 1
        assert holds(final) == holds(cold)
