"""Fault-injection coverage for the ``hsis serve`` job server.

The serving counterpart of ``test_parallel_faults.py``: hostile
*workers* (hard exits, deadline overruns, memory hogs — injected by
monkeypatching the :data:`repro.serve.jobs.WORKERS` dispatch table,
which fork-started workers inherit) and hostile *clients* (malformed
JSON, oversized lines, disconnecting mid-stream).  The guarantees under
test: every fault surfaces as a clean ERROR/status line, the queue
never stalls, no worker process outlives its job, and the server keeps
serving healthy traffic afterwards.
"""

import asyncio
import multiprocessing
import os
import time

import pytest

import repro.serve.jobs as serve_jobs
from repro.serve import MAX_LINE_BYTES, HsisServer, ServeClient
from repro.serve.protocol import encode

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="hostile worker bodies live in this module; workers must fork",
)

#: Every server interaction must finish well inside this, or a fault
#: the pool should have reaped has wedged the queue.
STALL_BUDGET_SECONDS = 60.0


# -- hostile worker bodies (module-level: they cross a fork boundary) --


def _hard_exit_job(*args, **kwargs):
    os._exit(3)


def _sleep_job(*args, **kwargs):
    time.sleep(600.0)


def _hungry_job(*args, **kwargs):
    hoard = []
    for _ in range(64):
        hoard.append(bytearray(16 * 1024 * 1024))  # 16 MiB a bite
    return hoard[0][0]


def serve_test(body, tmp_path, **server_kwargs):
    server_kwargs.setdefault("jobs", 2)
    server_kwargs.setdefault("timeout", 30.0)
    server_kwargs.setdefault("cache_dir", str(tmp_path / "cache"))

    async def main():
        server = HsisServer(host="127.0.0.1", port=0, **server_kwargs)
        await server.start()
        try:
            return await asyncio.wait_for(
                body(server), timeout=STALL_BUDGET_SECONDS
            )
        finally:
            await server.stop()

    return asyncio.run(main())


async def healthy_fuzz(port, seed=0):
    """A real (non-hostile) job proving the server still serves."""
    async with ServeClient(port=port) as client:
        return await client.submit("fuzz", knobs={"trials": 1, "seed": seed})


class TestHostileWorkers:
    def test_hard_exit_surfaces_as_crashed(self, tmp_path, monkeypatch):
        monkeypatch.setitem(serve_jobs.WORKERS, "check", _hard_exit_job)

        async def body(server):
            async with ServeClient(port=server.port) as client:
                doomed = await client.submit(
                    "check", design={"gallery": "traffic"}
                )
            alive = await healthy_fuzz(server.port)
            return doomed, alive

        doomed, alive = serve_test(body, tmp_path)
        assert not doomed["ok"]
        assert doomed["status"] == "crashed"
        assert "exit code 3" in doomed["error"]
        assert doomed["result"] is None
        assert alive["ok"], "server stopped serving after a worker crash"
        assert not multiprocessing.active_children(), "worker leaked"

    def test_sleep_past_deadline_is_reaped(self, tmp_path, monkeypatch):
        monkeypatch.setitem(serve_jobs.WORKERS, "check", _sleep_job)

        async def body(server):
            start = time.monotonic()
            async with ServeClient(port=server.port) as client:
                doomed = await client.submit(
                    "check", design={"gallery": "traffic"}
                )
            elapsed = time.monotonic() - start
            alive = await healthy_fuzz(server.port)
            return doomed, elapsed, alive

        doomed, elapsed, alive = serve_test(body, tmp_path, timeout=0.5)
        assert doomed["status"] == "timeout"
        assert "deadline" in doomed["error"]
        assert elapsed < STALL_BUDGET_SECONDS
        assert alive["ok"]
        assert not multiprocessing.active_children(), "worker leaked"

    def test_crashed_and_hung_jobs_never_poison_the_cache(
        self, tmp_path, monkeypatch
    ):
        """A failed job must not be cached: fixing the worker (here,
        un-patching it) makes the same submission succeed cold."""
        monkeypatch.setitem(serve_jobs.WORKERS, "fuzz", _hard_exit_job)

        async def crash(server):
            return await healthy_fuzz(server.port)

        doomed = serve_test(crash, tmp_path)
        assert doomed["status"] == "crashed"

        monkeypatch.setitem(
            serve_jobs.WORKERS, "fuzz", serve_jobs.run_fuzz_job
        )

        async def retry(server):
            return await healthy_fuzz(server.port)

        recovered = serve_test(retry, tmp_path)
        assert recovered["ok"]
        assert not recovered["cached"], "a crashed result was cached"

    def test_memory_quota_is_enforced(self, tmp_path, monkeypatch):
        monkeypatch.setitem(serve_jobs.WORKERS, "fuzz", _hungry_job)

        async def body(server):
            doomed = await healthy_fuzz(server.port)
            return doomed

        doomed = serve_test(
            body, tmp_path, memory_limit=128 * 1024 * 1024
        )
        # RLIMIT_AS makes the allocation fail: MemoryError (ERROR) on
        # most platforms, or an outright abort (CRASHED) — either way
        # the quota held and the failure is explicit.
        assert not doomed["ok"]
        assert doomed["status"] in ("error", "crashed")
        if doomed["status"] == "error":
            assert "MemoryError" in doomed["error"]
        assert not multiprocessing.active_children(), "worker leaked"


class TestCancellation:
    def test_cancel_running_job_reaps_its_worker(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(serve_jobs.WORKERS, "check", _sleep_job)

        async def body(server):
            async with ServeClient(port=server.port) as client:
                ack = await client.submit_nowait(
                    "check", design={"gallery": "traffic"}
                )
                job_id = ack["job"]
                deadline = asyncio.get_running_loop().time() + 30.0
                while True:
                    async with ServeClient(port=server.port) as probe:
                        detail = await probe.status(job_id)
                    if detail["detail"]["state"] == "running":
                        break
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                async with ServeClient(port=server.port) as probe:
                    cancelled = await probe.cancel(job_id)
                result = await client.wait_result()
            return cancelled, result

        cancelled, result = serve_test(body, tmp_path, timeout=300.0)
        assert cancelled["ok"] and not cancelled["already_finished"]
        assert result["status"] == "cancelled"
        assert "cancelled" in result["error"]
        assert not multiprocessing.active_children(), "worker leaked"

    def test_cancel_queued_job_never_runs(self, tmp_path, monkeypatch):
        monkeypatch.setitem(serve_jobs.WORKERS, "check", _sleep_job)

        async def body(server):
            async with ServeClient(port=server.port) as blocker, \
                    ServeClient(port=server.port) as victim:
                await blocker.submit_nowait(
                    "check", design={"gallery": "traffic"}
                )
                ack = await victim.submit_nowait(
                    "check", design={"gallery": "elevator"}
                )
                async with ServeClient(port=server.port) as probe:
                    cancelled = await probe.cancel(ack["job"])
                    # Unblock the runner so the queued cancel drains.
                    first = await probe.cancel(
                        (await probe.status())["recent"][0]["job"]
                    )
                result = await victim.wait_result()
            return cancelled, first, result

        cancelled, first, result = serve_test(
            body, tmp_path, jobs=1, timeout=300.0
        )
        assert cancelled["ok"]
        assert result["status"] == "cancelled"
        assert "queued" in result["error"]
        assert not multiprocessing.active_children(), "worker leaked"


class TestHostileClients:
    def test_malformed_payload_gets_clean_error(self, tmp_path):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port, limit=MAX_LINE_BYTES
            )
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                import json

                error = json.loads(await reader.readline())
                # The connection survives a bad line: pipelining resumes.
                writer.write(encode({"op": "ping"}))
                await writer.drain()
                pong = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            alive = await healthy_fuzz(server.port)
            return error, pong, alive, dict(server.stats.counters)

        error, pong, alive, counters = serve_test(body, tmp_path)
        assert error["ok"] is False and error["op"] == "error"
        assert pong["op"] == "pong"
        assert alive["ok"]
        assert counters["serve.protocol_errors"] >= 1

    def test_unknown_op_and_bad_submission_get_errors(self, tmp_path):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                unknown = await client.request({"op": "frobnicate"})
                bad_kind = await client.request(
                    {"op": "submit", "kind": "divine"}
                )
                no_design = await client.request(
                    {"op": "submit", "kind": "check"}
                )
            return unknown, bad_kind, no_design

        unknown, bad_kind, no_design = serve_test(body, tmp_path)
        for reply in (unknown, bad_kind, no_design):
            assert reply["ok"] is False
            assert reply["op"] == "error"
            assert reply["error"]

    def test_oversized_line_is_refused_not_fatal(self, tmp_path):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            closed_on_us = False
            error_line = b""
            try:
                writer.write(b"x" * (MAX_LINE_BYTES + 16) + b"\n")
                try:
                    await asyncio.wait_for(writer.drain(), timeout=10.0)
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    closed_on_us = True
                try:
                    error_line = await asyncio.wait_for(
                        reader.readline(), timeout=10.0
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    closed_on_us = True
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            alive = await healthy_fuzz(server.port)
            return error_line, closed_on_us, alive

        error_line, closed_on_us, alive = serve_test(body, tmp_path)
        # Either the clean refusal arrived, or the kernel reset the
        # connection under the flood — but never a wedged server.
        if error_line:
            assert b"exceeds" in error_line
        else:
            assert closed_on_us
        assert alive["ok"], "server died on an oversized line"

    def test_client_disconnect_mid_stream_leaves_server_healthy(
        self, tmp_path
    ):
        async def body(server):
            client = ServeClient(port=server.port)
            await client.connect()
            ack = await client.submit_nowait(
                "check", design={"gallery": "traffic"}, stream=True
            )
            await client.close()  # walk away while the job runs
            deadline = asyncio.get_running_loop().time() + 30.0
            while True:
                async with ServeClient(port=server.port) as probe:
                    detail = await probe.status(ack["job"])
                if detail["detail"]["state"] == "done":
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)
            # The abandoned job completed and cached; a new client reaps
            # the benefit without recomputing.
            rerun = await healthy_fuzz(server.port, seed=5)
            async with ServeClient(port=server.port) as again:
                repeat = await again.submit(
                    "check", design={"gallery": "traffic"}
                )
            return rerun, repeat

        rerun, repeat = serve_test(body, tmp_path)
        assert rerun["ok"]
        assert repeat["ok"] and repeat["cached"]
        assert not multiprocessing.active_children(), "worker leaked"

    def test_full_backlog_is_refused_explicitly(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(serve_jobs.WORKERS, "check", _sleep_job)

        async def body(server):
            clients = []
            refused = None
            try:
                # One running + one queued fills a backlog of 1; the
                # third distinct submission must be refused, not queued.
                for name in ("traffic", "elevator", "vending"):
                    client = ServeClient(port=server.port)
                    await client.connect()
                    clients.append(client)
                    try:
                        ack = await client.submit_nowait(
                            "check", design={"gallery": name}
                        )
                    except Exception as exc:
                        refused = str(exc)
                        break
                    if name == "traffic":
                        deadline = asyncio.get_running_loop().time() + 30.0
                        while True:
                            async with ServeClient(
                                port=server.port
                            ) as probe:
                                detail = await probe.status(ack["job"])
                            if detail["detail"]["state"] == "running":
                                break
                            assert (
                                asyncio.get_running_loop().time() < deadline
                            )
                            await asyncio.sleep(0.02)
            finally:
                for client in clients:
                    await client.close()
            return refused, dict(server.stats.counters)

        refused, counters = serve_test(
            body, tmp_path, jobs=1, backlog=1, timeout=300.0
        )
        assert refused is not None
        assert "busy" in refused
        assert counters["serve.rejected"] == 1
