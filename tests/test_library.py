"""Tests for the parameterized property library (paper §8 item 8).

The key invariant: for every template offering both forms, the CTL
formula and the automaton must give the same verdict on the same design
(cross-engine agreement on universal properties).
"""

import pytest

from repro import SymbolicFsm, compile_verilog, flatten
from repro.ctl import ModelChecker
from repro.lc import check_containment
from repro.pif import (
    TEMPLATES,
    always_eventually,
    absence_before,
    instantiate,
    invariant,
    mutual_exclusion,
    never,
    next_step,
    precedence,
    reachable,
    response,
)

HANDSHAKE = """
module handshake;
  reg req, ack, done;
  initial req = 0;
  initial ack = 0;
  initial done = 0;
  wire want;
  assign want = $ND(0, 1);
  always @(posedge clk) begin
    if (!req && !ack) req <= want;
    else if (ack) req <= 0;
  end
  always @(posedge clk) ack <= req;
  always @(posedge clk) done <= ack;
endmodule
"""


def machine():
    return flatten(compile_verilog(HANDSHAKE))


def both_verdicts(prop, fairness=None):
    verdicts = {}
    if prop.ctl is not None:
        fsm = SymbolicFsm(machine())
        fsm.build_transition()
        verdicts["ctl"] = ModelChecker(fsm, fairness=fairness).check(
            prop.ctl).holds
    if prop.automaton is not None:
        fsm = SymbolicFsm(machine())
        verdicts["lc"] = check_containment(
            fsm, prop.automaton, system_fairness=fairness).holds
    return verdicts


class TestAgreement:
    @pytest.mark.parametrize("prop,expected", [
        (mutual_exclusion("req", "done"), True),   # pipeline: 2 apart? req&done can overlap? see below
        (never(("ack", "1")), False),
        (invariant(("req", "0")), False),
        (next_step("ack", "done"), True),
        (precedence(cause="req", effect="ack"), True),
        (absence_before(bad="done", gate="ack"), True),
    ])
    def test_ctl_and_lc_agree(self, prop, expected):
        verdicts = both_verdicts(prop)
        assert len(set(verdicts.values())) == 1, verdicts
        assert verdicts["ctl"] is expected

    def test_reachable_is_ctl_only(self):
        prop = reachable("done")
        assert prop.automaton is None
        verdicts = both_verdicts(prop)
        assert verdicts == {"ctl": True}


class TestResponse:
    def test_response_requires_fairness(self):
        # ack always follows req within two ticks here, so response holds
        # even without fairness
        prop = response(request="req", grant="ack")
        verdicts = both_verdicts(prop)
        assert verdicts["ctl"] is True
        assert verdicts["lc"] is True

    def test_response_violated(self):
        # done is never granted while req is low... use a false response:
        prop = response(request="done", grant=("req", "1"))
        verdicts = both_verdicts(prop)
        # after done, req may stay low forever (want nondeterministic)
        assert verdicts["ctl"] is False
        assert verdicts["lc"] is False


class TestAlwaysEventually:
    def test_fails_without_fairness(self):
        prop = always_eventually("req")
        verdicts = both_verdicts(prop)
        assert verdicts["ctl"] is False
        assert verdicts["lc"] is False


class TestInterface:
    def test_instantiate_by_name(self):
        prop = instantiate("mutual_exclusion", "req", "ack", name="custom")
        assert prop.name == "custom"
        assert prop.ctl is not None
        assert prop.automaton is not None

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            instantiate("wishful_thinking", "x")

    def test_all_templates_listed(self):
        assert set(TEMPLATES) >= {
            "mutual_exclusion", "invariant", "never", "response",
            "absence_before", "precedence", "next_step", "reachable",
            "always_eventually",
        }

    def test_value_specs(self):
        prop = never(("req", "0"), name="req_never_low")
        assert prop.name == "req_never_low"
        verdicts = both_verdicts(prop)
        assert verdicts["ctl"] is False  # req starts low
