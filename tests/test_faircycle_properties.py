"""Property-based tests: the symbolic fair-cycle engine against an
explicit-state reference.

Random small machines with random Büchi / negative / Streett constraints
are checked two ways:

* symbolically, through :func:`repro.lc.faircycle.find_fair_scc`;
* explicitly, by enumerating every strongly connected subgraph closure
  with networkx and applying the fairness semantics directly (including
  the Streett edge-removal recursion).

The verdicts must agree, and any witness SCC the symbolic engine returns
must itself satisfy all constraints.
"""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.fairness import (
    BuchiState,
    FairnessSpec,
    NegativeStateSet,
    StreettPair,
)
from repro.blifmv import flatten, parse
from repro.lc.faircycle import FairGraph, find_fair_scc
from repro.debug.trace import thread_fair_cycle
from repro.network import SymbolicFsm

N_STATES = 5
VALUES = [str(i) for i in range(N_STATES)]


def build_machine(edges):
    """One-latch machine with the given explicit edge list."""
    by_src = {}
    for src, dst in edges:
        by_src.setdefault(src, set()).add(dst)
    rows = []
    for src, dsts in sorted(by_src.items()):
        targets = sorted(dsts)
        entry = targets[0] if len(targets) == 1 else "({})".format(",".join(targets))
        rows.append(f"{src} {entry}")
    body = "\n".join(rows) if rows else "0 0"
    text = f"""
.model g
.mv s,n 8
.table s -> n
{body}
.latch n s
.reset s
0
"""
    fsm = SymbolicFsm(flatten(parse(text)))
    fsm.build_transition()
    return fsm


# -- explicit reference ----------------------------------------------------


def explicit_fair_cycle_exists(edges, buchi_sets, neg_sets, streett_pairs):
    """Reference semantics on the explicit graph.

    A fair cycle is a strongly connected edge-subgraph C (non-empty set
    of edges, mutually reachable) such that:
    * for each Büchi set B: C has an edge leaving a B-state;
    * for each negative set S: C has an edge leaving a non-S state;
    * for each Streett pair (E, F) over source states: if C contains an
      edge from an E-state then it contains an edge from an F-state —
      with the edge-removal subtlety: offending E-edges may simply be
      *avoided*, so the check recurses on the pruned graph.
    """

    def check_region(edge_set):
        graph = nx.DiGraph(list(edge_set))
        for component in nx.strongly_connected_components(graph):
            inside = {
                (u, v) for (u, v) in edge_set if u in component and v in component
            }
            if not inside:
                continue
            if _check_scc_explicit(inside, buchi_sets, neg_sets, streett_pairs,
                                    check_region):
                return True
        return False

    return check_region(set(edges))


def _check_scc_explicit(inside, buchi_sets, neg_sets, streett_pairs, recurse):
    for b in buchi_sets:
        if not any(u in b for (u, v) in inside):
            return False
    for s in neg_sets:
        if not any(u not in s for (u, v) in inside):
            return False
    removable = set()
    for (e_states, f_states) in streett_pairs:
        has_e = any(u in e_states for (u, v) in inside)
        has_f = any(u in f_states for (u, v) in inside)
        if has_e and not has_f:
            removable |= {(u, v) for (u, v) in inside if u in e_states}
    if removable:
        pruned = inside - removable
        return recurse(pruned)
    return True


# -- strategies --------------------------------------------------------------


def edges_strategy():
    all_edges = [(a, b) for a in VALUES for b in VALUES]
    return st.lists(st.sampled_from(all_edges), min_size=1, max_size=12,
                    unique=True)


def subset_strategy():
    return st.sets(st.sampled_from(VALUES), max_size=3)


@settings(max_examples=60, deadline=None)
@given(
    edges_strategy(),
    st.lists(subset_strategy(), max_size=2),
    st.lists(subset_strategy(), max_size=2),
    st.lists(st.tuples(subset_strategy(), subset_strategy()), max_size=2),
)
def test_symbolic_agrees_with_explicit(edges, buchi_sets, neg_sets, streett):
    # Restrict to the reachable part from state 0 (the engine searches
    # within the reached set, mirroring real use).
    graph = nx.DiGraph(edges)
    graph.add_node("0")
    reachable = nx.descendants(graph, "0") | {"0"}
    edges = [(u, v) for (u, v) in edges if u in reachable and v in reachable]
    if not edges:
        return

    fsm = build_machine(edges)
    fair_graph = FairGraph(fsm)
    var = fsm.var("s")
    constraints = []
    for b in buchi_sets:
        constraints.append(
            BuchiState(var.literal(sorted(b)) if b else fsm.bdd.false))
    for s in neg_sets:
        constraints.append(
            NegativeStateSet(var.literal(sorted(s)) if s else fsm.bdd.false))
    for e, f in streett:
        constraints.append(StreettPair(
            e=var.literal(sorted(e)) if e else fsm.bdd.false,
            f=var.literal(sorted(f)) if f else fsm.bdd.false,
        ))
    spec = FairnessSpec(constraints).normalize(fsm.bdd, fsm.bdd.true)
    reached = fsm.reachable().reached
    scc = find_fair_scc(fair_graph, spec, reached)

    expected = explicit_fair_cycle_exists(edges, buchi_sets, neg_sets, streett)
    assert (scc is not None) == expected, (
        f"edges={edges} buchi={buchi_sets} neg={neg_sets} streett={streett}"
    )

    if scc is not None:
        # The witness SCC must be non-trivial and internally consistent:
        # a threaded cycle exists and visits every required edge set.
        anchor = fair_graph.pick_state(scc.states)
        assert anchor is not None
        cycle = thread_fair_cycle(fair_graph, scc, anchor)
        assert len(cycle) >= 1
        # Each consecutive pair is a transition of scc.trans.
        bdd = fsm.bdd
        for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
            b_primed = bdd.rename(b, fsm.x_to_y())
            step = bdd.and_(bdd.and_(scc.trans, a), b_primed)
            assert step != bdd.false
        # Every required edge set is hit somewhere on the cycle.
        for required, label in scc.required_edges:
            if required == bdd.false:
                continue
            hit = False
            for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
                b_primed = bdd.rename(b, fsm.x_to_y())
                edge = bdd.and_(bdd.and_(required, a), b_primed)
                if edge != bdd.false:
                    hit = True
                    break
            assert hit, f"cycle misses required edge set {label}"
