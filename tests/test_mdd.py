"""Unit tests for the multi-valued (MDD) layer."""

import pytest

from repro.bdd import BDD, BddError, MddManager
from repro.bdd.mdd import bits_for


class TestBitsFor:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 1), (3, 2), (4, 2),
                                            (5, 3), (8, 3), (9, 4)])
    def test_bits_for(self, n, expected):
        assert bits_for(n) == expected

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            bits_for(0)


class TestMvVar:
    def test_literal_single(self):
        m = MddManager()
        v = m.declare("color", ["red", "green", "blue"])
        lit = v.literal("green")
        assert m.bdd.sat_count(lit, v.bits) == 1

    def test_literal_set(self):
        m = MddManager()
        v = m.declare("color", ["red", "green", "blue"])
        lit = v.literal(["red", "blue"])
        assert m.bdd.sat_count(lit, v.bits) == 2

    def test_literal_unknown_value(self):
        m = MddManager()
        v = m.declare("color", ["red", "green"])
        with pytest.raises(BddError):
            v.literal("mauve")

    def test_domain_constraint_excludes_unused_codes(self):
        m = MddManager()
        v = m.declare("x", ["a", "b", "c"])  # 2 bits, one unused code
        assert m.bdd.sat_count(v.domain_constraint, v.bits) == 3

    def test_power_of_two_domain_unconstrained(self):
        m = MddManager()
        v = m.declare("x", ["a", "b", "c", "d"])
        assert v.domain_constraint == m.bdd.true

    def test_code_value_roundtrip(self):
        m = MddManager()
        v = m.declare("x", ["p", "q", "r"])
        for i, value in enumerate(["p", "q", "r"]):
            assert v.code_of(value) == i
            assert v.value_of(i) == value
        with pytest.raises(BddError):
            v.value_of(3)

    def test_duplicate_values_rejected(self):
        m = MddManager()
        with pytest.raises(BddError):
            m.declare("x", ["a", "a"])

    def test_eq_var(self):
        m = MddManager()
        a = m.declare("a", ["x", "y", "z"])
        b = m.declare("b", ["x", "y", "z"])
        eq = a.eq_var(b)
        count = m.bdd.sat_count(eq, list(a.bits) + list(b.bits))
        assert count == 3  # diagonal only (invalid codes excluded)

    def test_eq_var_domain_mismatch(self):
        m = MddManager()
        a = m.declare("a", ["x", "y"])
        b = m.declare("b", ["x", "y", "z"])
        with pytest.raises(BddError):
            a.eq_var(b)

    def test_decode(self):
        m = MddManager()
        v = m.declare("x", ["a", "b", "c"])
        assignment = m.bdd.pick_cube(v.literal("c"), v.bits)
        assert v.decode(assignment) == "c"


class TestMddManager:
    def test_declare_pair_interleaves_bits(self):
        m = MddManager()
        x, y = m.declare_pair("s", "s_next", ["a", "b", "c", "d"])
        levels_x = [m.bdd.level(b) for b in x.bits]
        levels_y = [m.bdd.level(b) for b in y.bits]
        # x bit i directly above y bit i
        for lx, ly in zip(levels_x, levels_y):
            assert ly == lx + 1

    def test_duplicate_name_rejected(self):
        m = MddManager()
        m.declare("x", ["a", "b"])
        with pytest.raises(BddError):
            m.declare("x", ["a", "b"])
        with pytest.raises(BddError):
            m.declare_pair("x", "y", ["a", "b"])

    def test_getitem_and_contains(self):
        m = MddManager()
        m.declare("x", ["a", "b"])
        assert "x" in m
        assert m["x"].name == "x"
        assert m.get("zz") is None
        with pytest.raises(BddError):
            m["zz"]

    def test_cube_covers_all_bits(self):
        m = MddManager()
        a = m.declare("a", ["p", "q", "r"])
        b = m.declare("b", ["p", "q"])
        cube = m.cube([a, b])
        assert len(m.bdd.cube_vars(cube)) == len(a.bits) + len(b.bits)

    def test_rename_map(self):
        m = MddManager()
        x, y = m.declare_pair("s", "t", ["a", "b"])
        mapping = m.rename_map([(x, y)])
        assert mapping == {x.bits[0]: y.bits[0]}

    def test_assignment_cube(self):
        m = MddManager()
        m.declare("a", ["p", "q", "r"])
        m.declare("b", ["u", "v"])
        cube = m.assignment_cube({"a": "q", "b": "v"})
        bits = list(m["a"].bits) + list(m["b"].bits)
        assert m.bdd.sat_count(cube, bits) == 1

    def test_decode_many(self):
        m = MddManager()
        m.declare("a", ["p", "q", "r"])
        m.declare("b", ["u", "v"])
        cube = m.assignment_cube({"a": "r", "b": "u"})
        assignment = m.bdd.pick_cube(cube, list(m["a"].bits) + list(m["b"].bits))
        assert m.decode(assignment, ["a", "b"]) == {"a": "r", "b": "u"}

    def test_domain_constraint_conjunction(self):
        m = MddManager()
        a = m.declare("a", ["p", "q", "r"])
        b = m.declare("b", ["u", "v", "w"])
        constraint = m.domain_constraint([a, b])
        bits = list(a.bits) + list(b.bits)
        assert m.bdd.sat_count(constraint, bits) == 9
