"""Tests for the symbolic FSM: images, reachability, state inspection."""

import pytest

from repro.bdd import BddError
from repro.blifmv import flatten, parse
from repro.network import SymbolicFsm

COUNTER = """
.model counter
.mv s,n 4
.table s -> n
0 1
1 2
2 3
3 0
.latch n s
.reset s
0
.end
"""

BRANCHY = """
.model branchy
.mv s,n 4
.table s -> n
0 (1,2)
1 3
2 3
3 3
.latch n s
.reset s
0
.end
"""


def build(text, **kwargs):
    fsm = SymbolicFsm(flatten(parse(text)), **kwargs)
    fsm.build_transition()
    return fsm


class TestTransitionRelation:
    def test_methods_equivalent(self):
        results = set()
        for method in ("greedy", "linear", "monolithic"):
            fsm = SymbolicFsm(flatten(parse(COUNTER)))
            fsm.build_transition(method=method)
            # compare via truth on all state pairs
            results.add(fsm.count_states(fsm.image(fsm.init)))
        assert results == {1}

    def test_quantify_result_populated(self):
        fsm = build(COUNTER)
        assert fsm.quantify_result is not None
        assert fsm.quantify_result.peak_size >= 2

    def test_frozen_after_build(self):
        fsm = build(COUNTER)
        with pytest.raises(BddError):
            fsm.add_state_var("extra", ["0", "1"], ["0"])
        with pytest.raises(BddError):
            fsm.add_conjunct(fsm.bdd.true, "late")


class TestImages:
    def test_image_follows_function(self):
        fsm = build(COUNTER)
        s0 = fsm.state_cube({"s": "0"})
        img = fsm.image(s0)
        assert fsm.pick_state(img) == {"s": "1"}

    def test_image_of_nondeterministic_state(self):
        fsm = build(BRANCHY)
        img = fsm.image(fsm.state_cube({"s": "0"}))
        assert fsm.count_states(img) == 2

    def test_preimage_inverts_image(self):
        fsm = build(COUNTER)
        s2 = fsm.state_cube({"s": "2"})
        pre = fsm.preimage(s2)
        assert fsm.pick_state(pre) == {"s": "1"}

    def test_image_preimage_galois(self):
        # S <= pre(post(S)) restricted to states with successors
        fsm = build(BRANCHY)
        s = fsm.state_cube({"s": "1"})
        back = fsm.preimage(fsm.image(s))
        assert fsm.bdd.and_(s, back) == s

    def test_partitioned_image_matches(self):
        fsm = build(BRANCHY)
        for value in "0123":
            s = fsm.state_cube({"s": value})
            assert fsm.image_partitioned(s) == fsm.image(s)


class TestReachability:
    def test_full_cycle(self):
        fsm = build(COUNTER)
        result = fsm.reachable()
        assert result.converged
        assert fsm.count_states(result.reached) == 4
        assert result.iterations == 4

    def test_rings_partition_reached(self):
        fsm = build(COUNTER)
        result = fsm.reachable()
        bdd = fsm.bdd
        union = bdd.false
        for ring in result.rings:
            assert bdd.and_(ring, union) == bdd.false  # disjoint
            union = bdd.or_(union, ring)
        assert union == result.reached

    def test_ring_depth_is_bfs_distance(self):
        fsm = build(COUNTER)
        result = fsm.reachable()
        # state '2' is exactly two steps from reset
        s2 = fsm.state_cube({"s": "2"})
        hits = [i for i, ring in enumerate(result.rings)
                if fsm.bdd.and_(ring, s2) != fsm.bdd.false]
        assert hits == [2]

    def test_max_iterations(self):
        fsm = build(COUNTER)
        result = fsm.reachable(max_iterations=1)
        assert not result.converged
        assert fsm.count_states(result.reached) == 2

    def test_observer_called_each_depth(self):
        fsm = build(COUNTER)
        depths = []
        fsm.reachable(observer=lambda d, f: depths.append(d))
        assert depths == [0, 1, 2, 3]

    def test_partitioned_reachability(self):
        fsm = SymbolicFsm(flatten(parse(BRANCHY)))
        result = fsm.reachable(partitioned=True)
        assert fsm.count_states(result.reached) == 4

    def test_custom_init(self):
        fsm = build(COUNTER)
        result = fsm.reachable(init=fsm.state_cube({"s": "2"}))
        assert fsm.count_states(result.reached) == 4


class TestStateInspection:
    def test_count_excludes_invalid_codes(self):
        fsm = build("""
.model m
.mv s,n 3
.table s -> n
- =s
.latch n s
.end
""")
        assert fsm.count_states(fsm.bdd.true) == 3

    def test_states_iter_limit(self):
        fsm = build(COUNTER)
        reached = fsm.reachable().reached
        assert len(list(fsm.states_iter(reached, limit=2))) == 2
        assert len(list(fsm.states_iter(reached))) == 4

    def test_state_cube_partial(self):
        text = """
.model m
.mv a,an 2
.mv b,bn 2
.table a -> an
- =a
.table b -> bn
- =b
.latch an a
.latch bn b
.end
"""
        fsm = build(text)
        partial = fsm.state_cube({"a": "1"})
        assert fsm.count_states(partial) == 2

    def test_pick_state_empty(self):
        fsm = build(COUNTER)
        assert fsm.pick_state(fsm.bdd.false) is None

    def test_var_lookup(self):
        fsm = build(COUNTER)
        assert fsm.var("s").name == "s"
        with pytest.raises(BddError):
            fsm.var("nope")


class TestMonitorHooks:
    def test_add_state_var_extends_init(self):
        fsm = SymbolicFsm(flatten(parse(COUNTER)))
        x, y = fsm.add_state_var("mon", ["a", "b"], ["a"])
        fsm.build_transition()
        # init now constrains the monitor to 'a'
        got = fsm.pick_state(fsm.init)
        assert got["mon"] == "a"

    def test_monitor_conjunct_in_transition(self):
        fsm = SymbolicFsm(flatten(parse(COUNTER)))
        x, y = fsm.add_state_var("mon", ["a", "b"], ["a"])
        # monitor: always move to 'b'
        fsm.add_conjunct(y.literal("b"), "monitor:test")
        fsm.build_transition()
        img = fsm.image(fsm.init)
        assert all(s["mon"] == "b" for s in fsm.states_iter(img))
