"""Property-based tests: the BDD engine against brute-force evaluation.

Random boolean expressions are built over a small variable set, turned
into BDDs, and compared with direct evaluation on every assignment.
These tests pin down canonicity, operator semantics, quantification and
the don't-care operators far more broadly than hand-written cases.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD

NAMES = ["v0", "v1", "v2", "v3", "v4"]


# -- expression strategy -------------------------------------------------

def exprs(depth=3):
    leaf = st.one_of(
        st.sampled_from([("var", n) for n in NAMES]),
        st.just(("const", True)),
        st.just(("const", False)),
    )
    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
            st.tuples(st.just("ite"), children, children, children),
        )
    return st.recursive(leaf, extend, max_leaves=12)


def build(bdd: BDD, expr) -> int:
    tag = expr[0]
    if tag == "var":
        return bdd.var(expr[1])
    if tag == "const":
        return bdd.true if expr[1] else bdd.false
    if tag == "not":
        return bdd.not_(build(bdd, expr[1]))
    if tag == "and":
        return bdd.and_(build(bdd, expr[1]), build(bdd, expr[2]))
    if tag == "or":
        return bdd.or_(build(bdd, expr[1]), build(bdd, expr[2]))
    if tag == "xor":
        return bdd.xor(build(bdd, expr[1]), build(bdd, expr[2]))
    if tag == "ite":
        return bdd.ite(build(bdd, expr[1]), build(bdd, expr[2]), build(bdd, expr[3]))
    raise AssertionError(tag)


def brute(expr, env) -> bool:
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not brute(expr[1], env)
    if tag == "and":
        return brute(expr[1], env) and brute(expr[2], env)
    if tag == "or":
        return brute(expr[1], env) or brute(expr[2], env)
    if tag == "xor":
        return brute(expr[1], env) != brute(expr[2], env)
    if tag == "ite":
        return brute(expr[2], env) if brute(expr[1], env) else brute(expr[3], env)
    raise AssertionError(tag)


def all_envs():
    for bits in itertools.product([False, True], repeat=len(NAMES)):
        yield dict(zip(NAMES, bits))


def fresh() -> BDD:
    bdd = BDD()
    for name in NAMES:
        bdd.add_var(name)
    return bdd


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_bdd_matches_brute_force(expr):
    bdd = fresh()
    f = build(bdd, expr)
    for env in all_envs():
        assert bdd.eval(f, env) is brute(expr, env)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_canonicity_of_equivalent_builds(expr):
    """Building f and ~~f (different op sequences) yields the same node."""
    bdd = fresh()
    f = build(bdd, expr)
    g = bdd.not_(bdd.not_(build(bdd, expr)))
    assert f == g


@settings(max_examples=40, deadline=None)
@given(exprs(), st.sampled_from(NAMES))
def test_exist_semantics(expr, var):
    bdd = fresh()
    f = build(bdd, expr)
    g = bdd.exist([var], f)
    for env in all_envs():
        env_t = dict(env, **{var: True})
        env_f = dict(env, **{var: False})
        expected = brute(expr, env_t) or brute(expr, env_f)
        assert bdd.eval(g, env) is expected


@settings(max_examples=40, deadline=None)
@given(exprs(), st.sampled_from(NAMES))
def test_forall_semantics(expr, var):
    bdd = fresh()
    f = build(bdd, expr)
    g = bdd.forall([var], f)
    for env in all_envs():
        env_t = dict(env, **{var: True})
        env_f = dict(env, **{var: False})
        expected = brute(expr, env_t) and brute(expr, env_f)
        assert bdd.eval(g, env) is expected


@settings(max_examples=40, deadline=None)
@given(exprs(), exprs(), st.sets(st.sampled_from(NAMES), max_size=3))
def test_and_exists_equals_naive(e1, e2, names):
    bdd = fresh()
    f, g = build(bdd, e1), build(bdd, e2)
    fused = bdd.and_exists(f, g, sorted(names))
    naive = bdd.exist(sorted(names), bdd.and_(f, g))
    assert fused == naive


@settings(max_examples=40, deadline=None)
@given(exprs(), exprs())
def test_constrain_and_restrict_agree_on_care(e_f, e_c):
    bdd = fresh()
    f, c = build(bdd, e_f), build(bdd, e_c)
    if c == bdd.false:
        return
    for op in (bdd.constrain, bdd.restrict_dc):
        g = op(f, c)
        assert bdd.and_(bdd.xor(f, g), c) == bdd.false


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_sat_count_matches_enumeration(expr):
    bdd = fresh()
    f = build(bdd, expr)
    expected = sum(1 for env in all_envs() if brute(expr, env))
    assert bdd.sat_count(f, NAMES) == expected


@settings(max_examples=30, deadline=None)
@given(exprs())
def test_sat_iter_exactly_the_models(expr):
    bdd = fresh()
    f = build(bdd, expr)
    got = set()
    for model in bdd.sat_iter(f, NAMES):
        named = tuple(model[bdd.var_index(n)] for n in NAMES)
        got.add(named)
    expected = {
        tuple(env[n] for n in NAMES) for env in all_envs() if brute(expr, env)
    }
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(exprs())
def test_gc_never_corrupts_registered_roots(expr):
    bdd = fresh()
    f = build(bdd, expr)
    bdd.register_root("f", f)
    build(bdd, ("and", ("var", "v0"), ("var", "v4")))  # garbage
    bdd.gc()
    for env in all_envs():
        assert bdd.eval(f, env) is brute(expr, env)
