"""The ordering portfolio changes wall-clock time, never answers.

Parity: a race over any K candidates returns exactly the serial
verdicts, and the ``--results`` file ``hsis check`` writes is
byte-identical whether the check ran serially, as a cold race, or from
a warm order cache.  Faults: a losing candidate killed mid-run leaks no
processes; a race whose every candidate dies falls back to a serial
check instead of losing availability; an external cancel aborts the
race with :class:`PortfolioCancelled` rather than wedging the caller.
Hostile candidate workers live at module level and are injected by
monkeypatching ``repro.ordering_portfolio.race._race_worker`` — the
dispatch looks the symbol up at race time and fork-started workers
inherit the patched module state (same idiom as ``test_serve_faults``).
"""

import multiprocessing
import threading
import time

import pytest

from repro.blifmv import flatten, parse as parse_blifmv
from repro.network import variable_order
from repro.oracle import run_sweep
from repro.ordering_portfolio import (
    OrderCache,
    PortfolioCancelled,
    candidate_orders,
    portfolio_order_for,
    run_portfolio_check,
)
from repro.ordering_portfolio.race import _race_worker as real_race_worker
from repro.parallel import check_properties, run_sweep_parallel
from repro.perf import EngineStats
from repro.pif import parse_pif

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK,
    reason="hostile candidate workers live in this module; workers must fork",
)

#: Every race below must finish well within this, or a cancelled loser
#: (parked in a 600 s sleep) was waited on instead of reaped.
STALL_BUDGET_SECONDS = 30.0

BLIFMV = """
.model counter
.mv s,n 3
.table s -> n
0 1
1 2
2 0
.latch n s
.reset s
0
.end
"""

PIF = """
ctl can_reach_two :: EF s=2
ctl never_stuck :: AG EX TRUE
ctl bogus :: AG s=0
"""

SERIAL_VERDICTS = [
    ("can_reach_two", True),
    ("never_stuck", True),
    ("bogus", False),
]


@pytest.fixture(scope="module")
def flat():
    return flatten(parse_blifmv(BLIFMV))


@pytest.fixture(scope="module")
def pif():
    return parse_pif(PIF)


def holds(verdicts):
    return [(v.name, v.holds) for v in verdicts]


# -- hostile candidate workers (module-level: they cross a fork) --


def _seed_wins_losers_hang(model, properties, fairness_decls, order):
    """The seed candidate finishes honestly; every other hangs."""
    if list(order) == variable_order(model):
        return real_race_worker(model, properties, fairness_decls, order)
    time.sleep(600.0)


def _every_candidate_raises(model, properties, fairness_decls, order):
    raise RuntimeError("injected candidate failure")


def _every_candidate_hangs(model, properties, fairness_decls, order):
    time.sleep(600.0)


class TestParity:
    @pytest.mark.parametrize("k", (1, 2, 4))
    def test_race_matches_serial_for_any_k(self, tmp_path, flat, pif, k):
        serial = check_properties(flat, pif.ctl_props, pif.fairness, jobs=1)
        cache = OrderCache(str(tmp_path / "orders"))
        raced, provenance = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=k, cache=cache,
        )
        assert holds(serial) == holds(raced) == SERIAL_VERDICTS
        assert [v.formula for v in raced] == [v.formula for v in serial]
        assert provenance["source"] == "race"
        assert 1 <= provenance["candidates"] <= k
        assert cache.stores == 1

    def test_warm_cache_skips_the_race(self, tmp_path, flat, pif):
        orders_dir = str(tmp_path / "orders")
        cold_stats, warm_stats = EngineStats(), EngineStats()
        cold, _ = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=2,
            orders_dir=orders_dir, stats=cold_stats,
        )
        warm, provenance = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=2,
            orders_dir=orders_dir, stats=warm_stats,
        )
        assert holds(warm) == holds(cold)
        assert provenance == {
            "source": "cache",
            "heuristic": provenance["heuristic"],
            "cache_hit": True,
            "candidates": 0,
            "margin_seconds": None,
        }
        assert cold_stats.counters["portfolio_races"] == 1
        assert warm_stats.counters["portfolio_cache_hits"] == 1
        assert "portfolio_races" not in warm_stats.counters
        assert warm_stats.meta["portfolio_source"] == "cache"

    def test_results_file_byte_identical_serial_cold_warm(self, tmp_path):
        """``hsis check --results`` writes the same bytes no matter how
        the verdicts were produced."""
        from repro.cli import main

        design = tmp_path / "counter.mv"
        design.write_text(BLIFMV)
        props = tmp_path / "props.pif"
        props.write_text(PIF)
        orders_dir = str(tmp_path / "orders")

        def check(out_name, *extra):
            out = tmp_path / out_name
            rc = main(
                ["check", str(design), str(props), "--results", str(out)]
                + list(extra)
            )
            assert rc == 1  # "bogus" fails by design
            return out.read_bytes()

        serial = check("serial.json")
        cold = check(
            "cold.json", "--portfolio", "3", "--orders-dir", orders_dir
        )
        warm = check(
            "warm.json", "--portfolio", "3", "--orders-dir", orders_dir
        )
        assert serial == cold == warm


class TestRaceFaults:
    @needs_fork
    def test_losers_are_reaped_not_awaited(
        self, tmp_path, flat, pif, monkeypatch
    ):
        """Losing candidates parked in a 600 s sleep are killed the
        moment the winner finishes — no leaked children, no stall."""
        import repro.ordering_portfolio.race as race

        monkeypatch.setattr(race, "_race_worker", _seed_wins_losers_hang)
        cache = OrderCache(str(tmp_path / "orders"))
        start = time.monotonic()
        verdicts, provenance = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=2, cache=cache,
        )
        elapsed = time.monotonic() - start
        assert elapsed < STALL_BUDGET_SECONDS, "race waited for a loser"
        assert not multiprocessing.active_children(), "loser leaked"
        assert holds(verdicts) == SERIAL_VERDICTS
        assert provenance["source"] == "race"
        assert provenance["heuristic"] == "seed"
        assert cache.stores == 1  # the winner (only) was persisted

    @needs_fork
    def test_all_candidates_failing_falls_back_to_serial(
        self, tmp_path, flat, pif, monkeypatch
    ):
        import repro.ordering_portfolio.race as race

        monkeypatch.setattr(race, "_race_worker", _every_candidate_raises)
        cache = OrderCache(str(tmp_path / "orders"))
        stats = EngineStats()
        verdicts, provenance = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=2, cache=cache,
            stats=stats,
        )
        assert holds(verdicts) == SERIAL_VERDICTS
        assert provenance["source"] == "fallback"
        assert provenance["heuristic"] == "seed"
        assert stats.counters["portfolio_race_failures"] == 1
        assert stats.meta["portfolio_source"] == "fallback"
        assert cache.stores == 0, "a failed race must not poison the cache"
        assert not multiprocessing.active_children()

    @needs_fork
    def test_external_cancel_raises_not_wedges(
        self, tmp_path, flat, pif, monkeypatch
    ):
        import repro.ordering_portfolio.race as race

        monkeypatch.setattr(race, "_race_worker", _every_candidate_hangs)
        cache = OrderCache(str(tmp_path / "orders"))
        pools = []

        def on_pool(pool):
            pools.append(pool)
            threading.Timer(0.5, pool.cancel).start()

        start = time.monotonic()
        with pytest.raises(PortfolioCancelled):
            run_portfolio_check(
                flat, pif.ctl_props, pif.fairness, k=2, cache=cache,
                on_pool=on_pool,
            )
        assert time.monotonic() - start < STALL_BUDGET_SECONDS
        assert len(pools) == 1 and pools[0].cancelled
        assert not multiprocessing.active_children(), "cancelled race leaked"
        assert cache.stores == 0


class TestServePortfolioKnob:
    def test_knob_races_then_hits_both_caches(self, tmp_path):
        """`portfolio` knob end-to-end: a cold submission races, an
        identical resubmission is served from the result cache, and a
        different K forks the result-cache key but still reuses the
        winning order from the shared order cache."""
        import asyncio

        from repro.serve import HsisServer, ServeClient

        async def body():
            server = HsisServer(
                host="127.0.0.1", port=0, jobs=1, timeout=60.0,
                cache_dir=str(tmp_path / "cache"),
                orders_dir=str(tmp_path / "orders"),
            )
            await server.start()
            try:
                async with ServeClient(port=server.port) as client:
                    plain = await client.submit(
                        "check", design={"gallery": "traffic"},
                    )
                    cold = await client.submit(
                        "check", design={"gallery": "traffic"},
                        knobs={"portfolio": 2},
                    )
                    repeat = await client.submit(
                        "check", design={"gallery": "traffic"},
                        knobs={"portfolio": 2},
                    )
                    other_k = await client.submit(
                        "check", design={"gallery": "traffic"},
                        knobs={"portfolio": 3},
                    )
                return plain, cold, repeat, other_k
            finally:
                await server.stop()

        plain, cold, repeat, other_k = asyncio.run(
            asyncio.wait_for(body(), STALL_BUDGET_SECONDS)
        )
        for r in (plain, cold, repeat, other_k):
            assert r["ok"] and r["status"] == "ok"

        def core(result):
            return [
                (v["name"], v["holds"]) for v in result["result"]["verdicts"]
            ]

        assert core(cold) == core(repeat) == core(other_k) == core(plain)
        assert not cold["cached"]
        assert cold["result"]["portfolio"]["source"] == "race"
        assert cold["result"]["portfolio"]["cache_hit"] is False
        assert repeat["cached"], "identical portfolio submission re-raced"
        assert not other_k["cached"], "portfolio K must fork the cache key"
        assert other_k["result"]["portfolio"]["source"] == "cache"
        assert other_k["result"]["portfolio"]["cache_hit"] is True


class TestDeterministicFuzzPick:
    def test_pick_is_a_pure_function_of_model_k_seed(self, flat):
        first = portfolio_order_for(flat, 4, 7)
        again = portfolio_order_for(flat, 4, 7)
        assert first == again
        name, order = first
        candidates = candidate_orders(flat, 4)
        assert (name, order) in candidates
        # Seeds cycle round-robin through the candidate list.
        picks = {portfolio_order_for(flat, 4, s)[0] for s in range(8)}
        assert picks == {n for n, _ in candidates}

    def test_parallel_portfolio_sweep_matches_serial(self):
        serial = run_sweep(6, seed0=0, portfolio=4)
        parallel = run_sweep_parallel(6, seed0=0, jobs=2, portfolio=4)
        assert serial.ok and parallel.ok, (
            serial.summary() + "\n" + parallel.summary()
        )
        assert [r.seed for r in parallel.reports] == [
            r.seed for r in serial.reports
        ]
        assert [str(d) for d in parallel.divergences] == [
            str(d) for d in serial.divergences
        ]
