"""Tests for language containment: pass/fail, early failure, emptiness."""

import pytest

from repro.automata import (
    Automaton,
    FairnessSpec,
    NegativeStateSet,
    atom,
)
from repro.blifmv import flatten, parse
from repro.lc import check_containment, doomed_states, language_empty
from repro.network import SymbolicFsm

TOGGLE = """
.model toggle
.mv s,n 2
.table s -> n
- (0,1)
.table s -> out
- =s
.mv out 2
.latch n s
.reset s
0
.end
"""

STUCK = """
.model stuck
.mv s,n 2
.table s -> n
0 0
1 1
.latch n s
.reset s
0
.end
"""


def model(text):
    return flatten(parse(text))


def invariance(name, bad_guard):
    aut = Automaton(name=name, states=["A", "B"], initial=["A"])
    aut.add_edge("A", "A", ~bad_guard)
    aut.add_edge("A", "B", bad_guard)
    aut.add_edge("B", "B")
    aut.accept_invariance(["A"])
    return aut


class TestSafety:
    def test_holding_invariant(self):
        # out never equals 2 — vacuously true on a binary net
        aut = invariance("never2", atom("s", "1") & atom("s", "0"))
        result = check_containment(model(TOGGLE), aut)
        assert result.holds
        assert result.fair_scc is None

    def test_violated_invariant(self):
        aut = invariance("never1", atom("out", "1"))
        result = check_containment(model(TOGGLE), aut)
        assert not result.holds
        assert result.fair_scc is not None

    def test_early_failure_detection_fires(self):
        aut = invariance("never1", atom("out", "1"))
        result = check_containment(model(TOGGLE), aut, early_fail=True)
        assert not result.holds
        assert result.early_failure

    def test_early_fail_disabled_same_verdict(self):
        aut = invariance("never1", atom("out", "1"))
        with_ef = check_containment(model(TOGGLE), aut, early_fail=True)
        without = check_containment(model(TOGGLE), aut, early_fail=False)
        assert with_ef.holds == without.holds is False
        assert not without.early_failure

    def test_quantify_methods_same_verdict(self):
        for method in ("greedy", "linear", "monolithic"):
            aut = invariance("never1", atom("out", "1"))
            result = check_containment(
                model(TOGGLE), aut, quantify_method=method)
            assert not result.holds


class TestLiveness:
    def recurrence(self):
        aut = Automaton(name="recur1", states=["Z", "O"], initial=["Z"])
        aut.add_edge("Z", "O", atom("s", "1"))
        aut.add_edge("Z", "Z", ~atom("s", "1"))
        aut.add_edge("O", "O", atom("s", "1"))
        aut.add_edge("O", "Z", ~atom("s", "1"))
        aut.accept_recurrence([("Z", "O"), ("O", "O")])
        return aut

    def test_liveness_fails_without_fairness(self):
        result = check_containment(model(TOGGLE), self.recurrence())
        assert not result.holds  # system may stay at s=0 forever

    def test_liveness_holds_with_fairness(self):
        fsm = SymbolicFsm(model(TOGGLE))
        spec = FairnessSpec([NegativeStateSet(fsm.var("s").literal("0"))])
        result = check_containment(fsm, self.recurrence(), system_fairness=spec)
        assert result.holds

    def test_empty_acceptance_rejects_everything(self):
        # an automaton with no accepting pair accepts nothing: containment
        # fails iff the system has any fair run at all
        aut = Automaton(name="nothing", states=["A"], initial=["A"])
        aut.add_edge("A", "A")
        result = check_containment(model(TOGGLE), aut)
        assert not result.holds


class TestLanguageEmpty:
    def test_nonempty_without_fairness(self):
        fsm = SymbolicFsm(model(STUCK))
        fsm.build_transition()
        assert not language_empty(fsm)

    def test_empty_under_contradictory_fairness(self):
        fsm = SymbolicFsm(model(STUCK))
        fsm.build_transition()
        spec = FairnessSpec([
            NegativeStateSet(fsm.var("s").literal("0")),
        ])
        # from reset the only run parks at s=0, which is unfair
        assert language_empty(fsm, spec)


class TestDoomedStates:
    def test_safety_trap_is_doomed(self):
        aut = invariance("inv", atom("out", "1"))
        doomed = doomed_states(aut)
        assert doomed == {"B"}

    def test_recurrence_has_no_doomed(self):
        aut = Automaton(name="r", states=["Z", "O"], initial=["Z"])
        aut.add_edge("Z", "O").add_edge("O", "Z")
        aut.accept_recurrence([("Z", "O")])
        assert doomed_states(aut) == set()

    def test_unreachable_accepting_core(self):
        # B cannot reach the accepting self-loop on A
        aut = Automaton(name="x", states=["A", "B"], initial=["A"])
        aut.add_edge("A", "A").add_edge("A", "B").add_edge("B", "B")
        aut.accept_recurrence([("A", "A")])
        assert doomed_states(aut) == {"B"}

    def test_all_doomed_when_no_pairs(self):
        aut = Automaton(name="none", states=["A"], initial=["A"])
        aut.add_edge("A", "A")
        assert doomed_states(aut) == {"A"}


class TestResultShape:
    def test_result_fields(self):
        aut = invariance("never1", atom("out", "1"))
        result = check_containment(model(TOGGLE), aut)
        assert result.failed
        assert result.reach.iterations >= 0
        assert result.seconds >= 0
        assert result.monitor.automaton.name == "never1"
