"""End-to-end integration tests across the whole pipeline.

These mirror the examples: Verilog in, verdicts and traces out, with
every intermediate format exercised (BLIF-MV text round-trip included).
"""

import pytest

from repro import SymbolicFsm, compile_verilog, flatten, parse, parse_pif, write
from repro.ctl import ModelChecker
from repro.debug import CtlDebugger, lc_counterexample
from repro.lc import check_containment
from repro.sim import Simulator

ARBITER = """
module arbiter;
  reg g1, g2;
  wire r1, r2;
  initial g1 = 0;
  initial g2 = 0;
  assign r1 = $ND(0, 1);
  assign r2 = $ND(0, 1);
  always @(posedge clk) g1 <= r1 && !r2;
  always @(posedge clk) g2 <= r2;
endmodule
"""

BUGGY = ARBITER.replace("g1 <= r1 && !r2;", "g1 <= r1;")

PIF = """
ctl mutual_exclusion :: AG !(g1=1 & g2=1)

automaton lc_mutex
  states GOOD BAD
  initial GOOD
  edge GOOD GOOD :: !(g1=1 & g2=1)
  edge GOOD BAD  :: g1=1 & g2=1
  edge BAD BAD
  accept invariance GOOD
end
"""


class TestFigureOneFlow:
    def test_correct_design_passes_everything(self):
        design = compile_verilog(ARBITER)
        pif = parse_pif(PIF)
        fsm = SymbolicFsm(flatten(design))
        fsm.build_transition()
        checker = ModelChecker(fsm)
        name, formula = pif.ctl_props[0]
        assert checker.check(formula).holds
        lc_fsm = SymbolicFsm(flatten(design))
        assert check_containment(lc_fsm, pif.automaton("lc_mutex")).holds

    def test_buggy_design_fails_both_with_traces(self):
        design = compile_verilog(BUGGY)
        pif = parse_pif(PIF)
        fsm = SymbolicFsm(flatten(design))
        fsm.build_transition()
        checker = ModelChecker(fsm)
        result = checker.check(pif.ctl_props[0][1])
        assert not result.holds
        node = CtlDebugger(checker).explain(pif.ctl_props[0][1])
        assert not node.holds
        end = node.path[-1].state
        assert end["g1"] == "1" and end["g2"] == "1"

        lc_fsm = SymbolicFsm(flatten(design))
        lc = check_containment(lc_fsm, pif.automaton("lc_mutex"))
        assert not lc.holds
        trace = lc_counterexample(lc)
        states = [s.state for s in trace.prefix + trace.cycle]
        assert any(s["g1"] == "1" and s["g2"] == "1" for s in states)

    def test_blifmv_text_roundtrip_preserves_verification(self):
        design = compile_verilog(BUGGY)
        text = write(design)
        reparsed = parse(text)
        pif = parse_pif(PIF)
        fsm = SymbolicFsm(flatten(reparsed))
        fsm.build_transition()
        assert not ModelChecker(fsm).check(pif.ctl_props[0][1]).holds

    def test_simulation_agrees_with_reachability(self):
        design = compile_verilog(ARBITER)
        fsm = SymbolicFsm(flatten(design))
        fsm.build_transition()
        reached = fsm.reachable().reached
        sim = Simulator(fsm, seed=7)
        sim.reset()
        for _ in range(50):
            sim.step()
            cube = fsm.state_cube(sim.current)
            assert fsm.bdd.and_(cube, reached) != fsm.bdd.false


class TestCrossEngineAgreement:
    """The two property engines must agree on safety verdicts."""

    @pytest.mark.parametrize("source,expected", [(ARBITER, True), (BUGGY, False)])
    def test_same_verdict(self, source, expected):
        design = compile_verilog(source)
        pif = parse_pif(PIF)
        fsm = SymbolicFsm(flatten(design))
        fsm.build_transition()
        mc = ModelChecker(fsm).check(pif.ctl_props[0][1]).holds
        lc_fsm = SymbolicFsm(flatten(design))
        lc = check_containment(lc_fsm, pif.automaton("lc_mutex")).holds
        assert mc is expected
        assert lc is expected
