"""Fault-injection coverage for the worker pool.

Deliberately hostile tasks — one that sleeps past its deadline, one
that calls ``os._exit`` mid-task, one that raises — prove the pool's
three guarantees: the worker is reaped, the failure is retried up to
the bound, and the final :class:`ResultEnvelope` surfaces it explicitly
while sibling tasks keep running.  No injected fault may ever stall the
run or silently drop a task.
"""

import multiprocessing
import os
import time

import pytest

from repro.parallel import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    Task,
    WorkerPool,
    run_sweep_parallel,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="hostile task functions live in this module; workers must fork",
)

#: Generous stall detector: every test's pool run must finish well
#: within this, or the pool wedged on a fault it should have reaped.
STALL_BUDGET_SECONDS = 30.0


# -- hostile task bodies (module-level: they cross a process boundary) --


def _sleep_forever(seconds: float = 600.0) -> str:
    time.sleep(seconds)
    return "overslept"


def _hard_exit(code: int = 1) -> None:
    os._exit(code)


def _raise_injected() -> None:
    raise ValueError("injected failure")


def _quick(value: str = "sibling") -> str:
    return value


def _fail_once_then_succeed(marker_path: str) -> str:
    """Crashes on its first attempt; the retry finds the marker."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("first attempt\n")
        os._exit(1)
    return "recovered"


def _return_unpicklable():
    return lambda: None


def run_pool(tasks, **kwargs):
    kwargs.setdefault("backoff", 0.01)
    pool = WorkerPool(**kwargs)
    start = time.monotonic()
    envelopes = pool.run(tasks)
    elapsed = time.monotonic() - start
    assert elapsed < STALL_BUDGET_SECONDS, "pool wedged on a hostile task"
    return envelopes


class TestTimeout:
    def test_hung_worker_is_reaped_and_reported(self):
        envelopes = run_pool(
            [
                Task("hang", _sleep_forever),
                Task("s1", _quick, ("a",)),
                Task("s2", _quick, ("b",)),
            ],
            jobs=2, timeout=0.3, retries=1,
        )
        hang, s1, s2 = envelopes
        assert hang.status == STATUS_TIMEOUT
        assert hang.attempts == 2  # first attempt + one retry, both reaped
        assert "deadline" in hang.error
        assert (s1.status, s1.value) == (STATUS_OK, "a")
        assert (s2.status, s2.value) == (STATUS_OK, "b")
        assert not multiprocessing.active_children(), "worker leaked"

    def test_per_task_timeout_overrides_pool_default(self):
        envelopes = run_pool(
            [
                Task("patient", _sleep_forever, (0.2,), timeout=5.0),
                Task("strict", _sleep_forever, (600.0,),
                     timeout=0.2, retries=0),
            ],
            jobs=2, timeout=None, retries=0,
        )
        patient, strict = envelopes
        assert (patient.status, patient.value) == (STATUS_OK, "overslept")
        assert strict.status == STATUS_TIMEOUT
        assert strict.attempts == 1


class TestCrash:
    def test_dead_worker_is_detected_not_hung(self):
        envelopes = run_pool(
            [
                Task("dead", _hard_exit, (3,)),
                Task("alive", _quick),
            ],
            jobs=2, timeout=10.0, retries=1,
        )
        dead, alive = envelopes
        assert dead.status == STATUS_CRASHED
        assert dead.attempts == 2
        assert "exit code 3" in dead.error
        assert (alive.status, alive.value) == (STATUS_OK, "sibling")

    def test_crash_then_recovery_via_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        envelopes = run_pool(
            [Task("flaky", _fail_once_then_succeed, (marker,))],
            jobs=1, timeout=10.0, retries=2,
        )
        (flaky,) = envelopes
        assert flaky.status == STATUS_OK
        assert flaky.value == "recovered"
        assert flaky.attempts == 2

    def test_retry_bound_is_respected(self):
        envelopes = run_pool(
            [Task("dead", _hard_exit, retries=0)],
            jobs=1, timeout=10.0, retries=5,
        )
        assert envelopes[0].status == STATUS_CRASHED
        assert envelopes[0].attempts == 1  # task override beats pool default


class TestError:
    def test_exception_carries_traceback(self):
        envelopes = run_pool(
            [Task("boom", _raise_injected), Task("calm", _quick)],
            jobs=2, timeout=10.0, retries=1,
        )
        boom, calm = envelopes
        assert boom.status == STATUS_ERROR
        assert boom.attempts == 2
        assert "ValueError: injected failure" in boom.error
        assert calm.status == STATUS_OK

    def test_unpicklable_result_degrades_to_error(self):
        envelopes = run_pool(
            [Task("lambda", _return_unpicklable)],
            jobs=1, timeout=10.0, retries=0,
        )
        assert envelopes[0].status == STATUS_ERROR
        assert "pickle" in envelopes[0].error.lower()


class TestSweepFaultSurface:
    def test_failed_chunk_reports_every_seed_explicitly(self):
        """A sweep whose workers all die still accounts for every seed:
        each one appears as a ``crash`` divergence, none are lost."""
        hostile_pool = WorkerPool(
            jobs=2, timeout=0.001, retries=0, backoff=0.0
        )
        sweep = run_sweep_parallel(8, seed0=0, jobs=2, pool=hostile_pool)
        assert not sweep.ok
        assert [r.seed for r in sweep.reports] == list(range(8))
        for report in sweep.reports:
            assert len(report.divergences) == 1
            divergence = report.divergences[0]
            assert divergence.area == "crash"
            assert "worker" in divergence.detail

    def test_mixed_outcome_ordering_is_stable(self):
        """Envelopes come back in submission order even when completion
        order is scrambled by failures and retries."""
        envelopes = run_pool(
            [
                Task("t0", _quick, ("0",)),
                Task("t1", _hard_exit),
                Task("t2", _quick, ("2",)),
                Task("t3", _sleep_forever),
                Task("t4", _quick, ("4",)),
            ],
            jobs=3, timeout=0.3, retries=1,
        )
        assert [e.task_id for e in envelopes] == ["t0", "t1", "t2", "t3", "t4"]
        assert [e.status for e in envelopes] == [
            STATUS_OK, STATUS_CRASHED, STATUS_OK, STATUS_TIMEOUT, STATUS_OK,
        ]
