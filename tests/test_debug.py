"""Tests for the debugging environment: traces are real executions."""

import pytest

from repro.automata import Automaton, FairnessSpec, NegativeStateSet, atom
from repro.blifmv import flatten, parse
from repro.ctl import ModelChecker, parse_ctl
from repro.debug import (
    CtlDebugger,
    Trace,
    TraceStep,
    format_lc_report,
    lc_counterexample,
)
from repro.lc import check_containment
from repro.network import SymbolicFsm

CHAIN = """
.model chain
.mv s,n 4
.table s -> n
0 (0,1)
1 2
2 3
3 3
.table s -> bad
3 1
- 0
.mv bad 2
.latch n s
.reset s
0
.end
"""


def chain_model():
    return flatten(parse(CHAIN))


def bad_automaton():
    aut = Automaton(name="nobad", states=["A", "B"], initial=["A"])
    aut.add_edge("A", "A", ~atom("bad", "1"))
    aut.add_edge("A", "B", atom("bad", "1"))
    aut.add_edge("B", "B")
    aut.accept_invariance(["A"])
    return aut


def step_is_transition(fsm, a: TraceStep, b: TraceStep) -> bool:
    cube = fsm.state_cube(a.state)
    image = fsm.image(cube)
    return fsm.bdd.and_(image, fsm.state_cube(b.state)) != fsm.bdd.false


class TestLcCounterexample:
    def test_trace_is_an_execution(self):
        result = check_containment(chain_model(), bad_automaton(),
                                   early_fail=False)
        assert not result.holds
        trace = lc_counterexample(result)
        fsm = result.fsm
        steps = trace.prefix + trace.cycle
        for a, b in zip(steps, steps[1:]):
            assert step_is_transition(fsm, a, b)
        # the cycle closes back to its start
        assert step_is_transition(fsm, steps[-1], trace.cycle[0])

    def test_prefix_starts_at_initial_state(self):
        result = check_containment(chain_model(), bad_automaton(),
                                   early_fail=False)
        trace = lc_counterexample(result)
        first = (trace.prefix + trace.cycle)[0]
        fsm = result.fsm
        assert fsm.bdd.and_(fsm.init, fsm.state_cube(first.state)) != fsm.bdd.false

    def test_prefix_is_shortest(self):
        # bad=1 requires s=3, which is 3 steps from reset; monitor trap
        # one step later.  The minimal prefix to the fair cycle region is
        # bounded by the BFS depth of the SCC.
        result = check_containment(chain_model(), bad_automaton(),
                                   early_fail=False)
        trace = lc_counterexample(result)
        bdd = result.fsm.bdd
        depth = None
        for k, ring in enumerate(result.reach.rings):
            if bdd.and_(ring, result.fair_scc.states) != bdd.false:
                depth = k
                break
        assert depth is not None
        assert len(trace.prefix) == depth

    def test_error_on_passing_property(self):
        aut = Automaton(name="trivial", states=["A"], initial=["A"])
        aut.add_edge("A", "A")
        aut.accept_invariance(["A"])
        result = check_containment(chain_model(), aut)
        assert result.holds
        with pytest.raises(ValueError):
            lc_counterexample(result)

    def test_report_formats(self):
        result = check_containment(chain_model(), bad_automaton())
        report = format_lc_report(result)
        assert "FAIL" in report
        assert "cycle" in report
        passing = check_containment(chain_model(), Automaton(
            name="trivial", states=["A"], initial=["A"],
        ).add_edge("A", "A").accept_invariance(["A"]))
        assert "PASS" in format_lc_report(passing)

    def test_trace_format_contains_states(self):
        result = check_containment(chain_model(), bad_automaton())
        trace = lc_counterexample(result)
        text = trace.format()
        assert "s=" in text
        assert "cycle" in text


class TestCtlDebugger:
    def _checker(self):
        fsm = SymbolicFsm(chain_model())
        fsm.build_transition()
        return ModelChecker(fsm)

    def test_ag_failure_has_path_and_child(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("AG !(bad=1)")
        assert not node.holds
        assert node.path  # shortest path to the violation
        assert node.children
        assert not node.children[0].holds

    def test_ag_path_is_execution(self):
        checker = self._checker()
        dbg = CtlDebugger(checker)
        node = dbg.explain("AG !(s=3)")
        fsm = checker.fsm
        for a, b in zip(node.path, node.path[1:]):
            assert step_is_transition(fsm, a, b)
        assert node.path[-1].state["s"] == "3"

    def test_and_failure_points_at_failing_conjunct(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("s=0 & s=1")
        assert not node.holds
        assert any(not c.holds for c in node.children)

    def test_or_failure_explains_both(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("s=1 | s=2")
        assert not node.holds
        assert len(node.children) == 2

    def test_ex_witness(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("EX s=1")
        assert node.holds
        assert node.children
        assert node.children[0].state["s"] == "1"

    def test_ef_witness_path(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("EF s=3")
        assert node.holds
        assert node.path
        assert node.path[-1].state["s"] == "3"

    def test_af_failure_lasso(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("AF s=1")   # can loop at 0 forever
        assert not node.holds
        assert node.path

    def test_eg_witness_lasso(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("EG s=0")
        assert node.holds
        assert node.path

    def test_au_failure(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("A[ s=0 U s=1 ]")
        assert not node.holds
        assert node.note

    def test_explain_at_specific_state(self):
        dbg = CtlDebugger(self._checker())
        node = dbg.explain("EX s=3", state={"s": "2"})
        assert node.holds

    def test_depth_limit(self):
        dbg = CtlDebugger(self._checker(), max_depth=0)
        node = dbg.explain("!(s=0)")
        assert node.note.startswith("(depth limit")

    def test_format_output(self):
        dbg = CtlDebugger(self._checker())
        text = dbg.explain("AG !(bad=1)").format()
        assert "FAILS" in text
        assert "note:" in text

    def test_fair_lasso_respects_fairness(self):
        fsm = SymbolicFsm(chain_model())
        fsm.build_transition()
        spec = FairnessSpec([NegativeStateSet(fsm.var("s").literal("0"))])
        checker = ModelChecker(fsm, fairness=spec)
        dbg = CtlDebugger(checker)
        # under the constraint, parking at 0 is unfair; EG s{0,3} is
        # witnessed only via the s=3 sink
        node = dbg.explain("EG s{0,3}", state={"s": "3"})
        assert node.holds
        cycle_states = {step.state["s"] for step in node.path}
        assert "3" in cycle_states
