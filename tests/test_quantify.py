"""Tests for early-quantification scheduling (all methods must agree)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.network.quantify import (
    Conjunct,
    METHODS,
    make_conjuncts,
    multiply_and_quantify,
)

N_VARS = 8


def fresh():
    bdd = BDD()
    for i in range(N_VARS):
        bdd.add_var(f"v{i}")
    return bdd


def chain_conjuncts(bdd, length):
    """A chain r_i(v_i, v_{i+1}) — the classic early-quantification shape."""
    out = []
    for i in range(length):
        node = bdd.xnor(bdd.var(f"v{i}"), bdd.var(f"v{i + 1}"))
        out.append((node, f"r{i}"))
    return make_conjuncts(bdd, out)


class TestAgreement:
    @pytest.mark.parametrize("method", METHODS)
    def test_chain_result(self, method):
        bdd = fresh()
        conjuncts = chain_conjuncts(bdd, 5)
        quantify = {bdd.var_index(f"v{i}") for i in range(1, 5)}
        result = multiply_and_quantify(bdd, conjuncts, quantify, method=method)
        # The chain of equalities collapses to v0 == v5.
        assert result.node == bdd.xnor(bdd.var("v0"), bdd.var("v5"))

    def test_methods_agree_pairwise(self):
        bdd = fresh()
        conjuncts = chain_conjuncts(bdd, 6)
        quantify = {bdd.var_index(f"v{i}") for i in (1, 3, 5)}
        results = {
            m: multiply_and_quantify(bdd, conjuncts, quantify, method=m).node
            for m in METHODS
        }
        assert len(set(results.values())) == 1

    def test_empty_pool(self):
        bdd = fresh()
        result = multiply_and_quantify(bdd, [], {0, 1}, method="greedy")
        assert result.node == bdd.true

    def test_unknown_method(self):
        bdd = fresh()
        with pytest.raises(ValueError):
            multiply_and_quantify(bdd, [], set(), method="quantum")

    def test_vacuous_variables_ignored(self):
        bdd = fresh()
        conjuncts = make_conjuncts(bdd, [(bdd.var("v0"), "r0")])
        result = multiply_and_quantify(
            bdd, conjuncts, {bdd.var_index("v7")}, method="greedy"
        )
        assert result.node == bdd.var("v0")


class TestEarlyQuantificationWins:
    def test_greedy_peak_not_worse_than_monolithic_on_chain(self):
        """The whole point (paper §4): quantifying early keeps peaks small."""
        bdd = fresh()
        conjuncts = chain_conjuncts(bdd, 7)
        quantify = {bdd.var_index(f"v{i}") for i in range(1, 7)}
        greedy = multiply_and_quantify(bdd, conjuncts, quantify, method="greedy")
        mono = multiply_and_quantify(bdd, conjuncts, quantify, method="monolithic")
        assert greedy.node == mono.node
        assert greedy.peak_size <= mono.peak_size

    def test_steps_recorded(self):
        bdd = fresh()
        conjuncts = chain_conjuncts(bdd, 4)
        quantify = {bdd.var_index(f"v{i}") for i in range(1, 4)}
        result = multiply_and_quantify(bdd, conjuncts, quantify, method="greedy")
        assert result.steps
        quantified = {v for step in result.steps for v in step.quantified}
        assert quantified == quantify


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(range(N_VARS)),
            st.sampled_from(range(N_VARS)),
            st.sampled_from(["and", "or", "xnor"]),
        ),
        min_size=1,
        max_size=6,
    ),
    st.sets(st.sampled_from(range(N_VARS)), max_size=4),
)
def test_methods_agree_on_random_pools(pairs, quantify):
    """Property: all three schedulers compute the same function."""
    bdd = fresh()
    ops = {"and": bdd.and_, "or": bdd.or_, "xnor": bdd.xnor}
    pool = []
    for index, (a, b, op) in enumerate(pairs):
        node = ops[op](bdd.var(a), bdd.var(b))
        pool.append((node, f"r{index}"))
    conjuncts = make_conjuncts(bdd, pool)
    results = {
        m: multiply_and_quantify(bdd, conjuncts, set(quantify), method=m).node
        for m in METHODS
    }
    assert len(set(results.values())) == 1
    # Reference: naive conjunction then quantification.
    naive = bdd.exist(sorted(quantify), bdd.conj(n for n, _ in pool))
    assert results["monolithic"] == naive
