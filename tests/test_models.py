"""Integration tests for the Table-1 designs (small configurations).

Every design must build through the full pipeline, have the expected
structural shape, and satisfy all its shipped properties.  Small
parameters keep the suite fast; the full-size configurations run in the
benchmark harness.
"""

import pytest

from repro.ctl import ModelChecker
from repro.lc import check_containment
from repro.models import TABLE1, get_spec
from repro.models import dcnew, gigamax, mdlc, philos, pingpong, scheduler
from repro.network import SymbolicFsm

SMALL = {
    "philos": {"n": 2},
    "ping pong": {},
    "gigamax": {"n": 2},
    "scheduler": {"n": 4},
    "dcnew": {"n": 2, "width": 2},
    "2mdlc": {"width": 1},
}


def check_all_properties(spec):
    fsm = SymbolicFsm(spec.flat())
    fsm.build_transition()
    reached = fsm.reachable().reached
    checker = ModelChecker(fsm, fairness=spec.pif.bind_fairness(fsm),
                           reached=reached)
    failures = []
    for name, formula in spec.pif.ctl_props:
        if not checker.check(formula).holds:
            failures.append(f"ctl {name}")
    for automaton in spec.pif.automata:
        fresh = SymbolicFsm(spec.flat())
        result = check_containment(
            fresh, automaton, system_fairness=spec.pif.bind_fairness(fresh))
        if not result.holds:
            failures.append(f"lc {automaton.name}")
    return fsm, reached, failures


@pytest.mark.parametrize("name", TABLE1)
def test_design_properties_all_hold(name):
    spec = get_spec(name, **SMALL[name])
    _fsm, _reached, failures = check_all_properties(spec)
    assert not failures, f"{name}: failing properties {failures}"


@pytest.mark.parametrize("name", TABLE1)
def test_design_builds_and_reaches_states(name):
    spec = get_spec(name, **SMALL[name])
    fsm = SymbolicFsm(spec.flat())
    fsm.build_transition()
    result = fsm.reachable()
    assert result.converged
    assert fsm.count_states(result.reached) >= 2
    assert spec.verilog_lines > 5
    assert spec.blifmv_lines > spec.verilog_lines  # compilation expands


def test_unknown_design_rejected():
    with pytest.raises(KeyError):
        get_spec("nonesuch")


class TestPropertyCounts:
    """The shipped property counts match the paper's Table 1 row."""

    @pytest.mark.parametrize("name,n_lc,n_ctl", [
        ("philos", 2, 2),
        ("ping pong", 6, 6),
        ("gigamax", 1, 9),
        ("scheduler", 2, 1),
        ("dcnew", 1, 7),
        ("2mdlc", 1, 1),
    ])
    def test_counts(self, name, n_lc, n_ctl):
        # Table-1 counts hold at the default (paper-scale) configuration.
        spec = get_spec(name)
        assert len(spec.pif.automata) == n_lc
        assert len(spec.pif.ctl_props) == n_ctl


class TestScheduler:
    def test_state_count_formula(self):
        # Milner's scheduler reaches ~ n * 2^n states (token position x
        # task subset, halved by the "current task idle before start"
        # correlation at the token position).
        spec = scheduler.spec(5)
        fsm = SymbolicFsm(spec.flat())
        fsm.build_transition()
        count = fsm.count_states(fsm.reachable().reached)
        assert count == 5 * 2 ** 5 // 2 + 5 * 2 ** 4 or count > 2 ** 5

    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            scheduler.verilog(1)
        with pytest.raises(ValueError):
            scheduler.verilog(99)


class TestPhilos:
    def test_deadlock_is_reachable(self):
        # the classic hold-left-fork deadlock must be present (HSIS is a
        # debugging tool: realistic bugs stay in)
        spec = philos.spec(2)
        fsm = SymbolicFsm(spec.flat())
        fsm.build_transition()
        reached = fsm.reachable().reached
        both_hold = fsm.state_cube({"phil0": "hasleft", "phil1": "hasleft"})
        assert fsm.bdd.and_(reached, both_hold) != fsm.bdd.false

    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            philos.verilog(1)


class TestGigamax:
    def test_coherence_core(self):
        spec = gigamax.spec(3)
        fsm = SymbolicFsm(spec.flat())
        fsm.build_transition()
        reached = fsm.reachable().reached
        two_owners = fsm.state_cube({"cache0": "own", "cache1": "own"})
        assert fsm.bdd.and_(reached, two_owners) == fsm.bdd.false


class TestMdlc:
    def test_progress_fails_without_fairness(self):
        from repro.automata import FairnessSpec
        spec = mdlc.spec(width=1)
        fsm = SymbolicFsm(spec.flat())
        result = check_containment(
            fsm, spec.pif.automaton("lc_progress"),
            system_fairness=FairnessSpec())
        assert not result.holds  # lossy channels may drop everything


class TestDcnew:
    def test_counter_drives_state_count(self):
        small = dcnew.spec(n=2, width=2)
        big = dcnew.spec(n=2, width=4)
        counts = []
        for spec in (small, big):
            fsm = SymbolicFsm(spec.flat())
            fsm.build_transition()
            counts.append(fsm.count_states(fsm.reachable().reached))
        assert counts[1] > counts[0] * 4
