"""Atomic ``results.json`` writes: an interrupted bench run must never
truncate the accumulated history.

The old code path opened the results file with ``"w"`` — truncating it
— before serializing, so a crash mid-write destroyed every accumulated
measurement.  :func:`repro.parallel.atomic.atomic_write_json` writes a
sibling temp file and ``os.replace``s it; these tests kill a write
mid-flight (both an in-process serialization failure and a worker that
``os._exit``s halfway through ``json.dump``) and assert the original
payload survives untouched.
"""

import json
import multiprocessing
import os

import pytest

from repro.parallel.atomic import atomic_write_json

HISTORY = {"table1": {"gigamax": {"states": 630, "reach_iters": 10}}}


def _die_mid_serialization(path: str) -> None:
    """Worker body: killed by ``os._exit`` while ``json.dump`` streams.

    The bomb object sorts last, so by the time the ``default`` hook
    fires, part of the payload is already on disk — exactly the
    "killed mid-flight" shape an interrupted bench run produces.
    """

    class Bomb:
        pass

    payload = {"aaaa": list(range(100)), "zzzz": Bomb()}
    atomic_write_json(path, payload, default=lambda obj: os._exit(1))


@pytest.fixture
def results(tmp_path):
    path = tmp_path / "results.json"
    path.write_text(json.dumps(HISTORY, indent=2, sort_keys=True) + "\n")
    return path


class TestAtomicWrite:
    def test_successful_write_replaces_payload(self, results):
        atomic_write_json(str(results), {"new": {"row": {"value": 1}}})
        assert json.loads(results.read_text()) == {
            "new": {"row": {"value": 1}}
        }
        assert not list(results.parent.glob("*.tmp")), "temp file leaked"

    def test_serialization_failure_leaves_history_intact(self, results):
        before = results.read_bytes()
        with pytest.raises(TypeError):
            atomic_write_json(str(results), {"bad": object()})
        assert results.read_bytes() == before
        assert not list(results.parent.glob("*.tmp")), "temp file leaked"

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the killed-writer worker lives in this module",
    )
    def test_killed_writer_leaves_history_intact(self, results):
        before = results.read_bytes()
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=_die_mid_serialization, args=(str(results),)
        )
        proc.start()
        proc.join(30)
        assert proc.exitcode == 1, "writer should have died mid-dump"
        assert results.read_bytes() == before
        # A fresh write still works even after the litter of a kill.
        atomic_write_json(str(results), {"after": {"kill": {"ok": 1}}})
        assert json.loads(results.read_text()) == {
            "after": {"kill": {"ok": 1}}
        }

    def test_creates_missing_file(self, tmp_path):
        target = tmp_path / "fresh.json"
        atomic_write_json(str(target), {"a": 1})
        assert json.loads(target.read_text()) == {"a": 1}

    def test_output_is_stable(self, tmp_path):
        """sort_keys + trailing newline: byte-stable across runs, which
        the determinism tests compare directly."""
        target = tmp_path / "stable.json"
        atomic_write_json(str(target), {"b": 2, "a": 1})
        text = target.read_text()
        assert text == '{\n  "a": 1,\n  "b": 2\n}\n'
