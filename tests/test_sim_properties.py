"""Property-based tests: the simulator vs the explicit-state oracle.

Every trace the seeded random walker produces must be a genuine path of
the model: each visited state lies in the oracle's reachable set and
each consecutive pair is an oracle transition.  Models come from the
differential fuzzer's generators, so the walker is exercised on
nondeterministic tables, free inputs and multi-valued domains.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.network import SymbolicFsm
from repro.oracle import ExplicitKripke
from repro.oracle.fuzz import gen_model
from repro.sim import Simulator

MAX_STEPS = 12


def walk(seed):
    """Run a seeded random walk; returns (kripke, list of state tuples)."""
    model = gen_model(random.Random(seed), max_space=512)
    kripke = ExplicitKripke(model)
    fsm = SymbolicFsm(model)
    sim = Simulator(fsm, seed=seed)
    sim.reset()
    for _ in range(MAX_STEPS):
        if not sim.successors():
            break
        sim.step()
    states = [
        tuple(s[name] for name in kripke.latch_names)
        for s in sim.trace.states
    ]
    return kripke, sim, states


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_trace_states_are_oracle_reachable(seed):
    kripke, _, states = walk(seed)
    reached, _ = kripke.reachable()
    assert states[0] in kripke.init_states
    for state in states:
        assert state in reached


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_trace_steps_are_oracle_transitions(seed):
    kripke, _, states = walk(seed)
    for here, there in zip(states, states[1:]):
        assert there in kripke.successors[here]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_deadlock_agrees_with_oracle(seed):
    kripke, sim, states = walk(seed)
    # The walk stopped early iff the oracle sees no successor there.
    stopped_early = len(states) < MAX_STEPS + 1
    if stopped_early:
        assert not kripke.successors[states[-1]]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_same_seed_same_trace(seed):
    _, _, first = walk(seed)
    _, _, second = walk(seed)
    assert first == second
