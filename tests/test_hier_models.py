"""Hierarchical gallery designs and shared-vs-flatten parity.

The acceptance bar for shared-shape encoding (docs/hierarchy.md): on
every hierarchical gallery design at several replica counts, the
shape-aware encode must reach exactly the flat encode's state count,
report identical property verdicts, and prove via its counters that
each distinct shape was table-encoded exactly once.
"""

import pytest

from repro.ctl import ModelChecker
from repro.models import get_spec
from repro.network.fsm import SymbolicFsm
from repro.oracle import run_sweep

HIER = ["philos_hier", "scheduler_hier", "gigamax_hier"]


def verdicts(fsm, pif):
    mc = ModelChecker(fsm, fairness=pif.bind_fairness(fsm))
    return [(name, mc.check(formula).holds) for name, formula in pif.ctl_props]


class TestHierGallery:
    @pytest.mark.parametrize("name", HIER)
    def test_default_spec_compiles_and_holds(self, name):
        spec = get_spec(name)
        assert spec.params == {"n": 3}
        fsm = SymbolicFsm(spec.elaborate())
        fsm.build_transition()
        fsm.reachable()
        assert all(holds for _, holds in verdicts(fsm, spec.pif))

    @pytest.mark.parametrize("name", HIER)
    @pytest.mark.parametrize("n", [2, 4])
    def test_shared_matches_flatten(self, name, n):
        spec = get_spec(name, n=n)
        shared = SymbolicFsm(spec.elaborate())
        shared.build_transition()
        reach_s = shared.reachable()
        plain = SymbolicFsm(spec.flat())
        plain.build_transition()
        reach_p = plain.reachable()
        assert shared.count_states(reach_s.reached) == \
            plain.count_states(reach_p.reached)
        assert reach_s.iterations == reach_p.iterations
        assert verdicts(shared, spec.pif) == verdicts(plain, spec.pif)

    @pytest.mark.parametrize("name", HIER)
    def test_each_shape_encoded_exactly_once(self, name):
        # N=5 replicas, 2 shapes (top + cell): the cell's tables are
        # built once and the other four instances are substituted.
        spec = get_spec(name, n=5)
        fsm = SymbolicFsm(spec.elaborate())
        assert fsm.network.shapes_encoded == 2
        assert fsm.network.instances_substituted == 4
        groups = spec.elaborate().shape_groups()
        assert len(groups) == 2
        assert sorted(len(g) for g in groups.values()) == [1, 5]

    @pytest.mark.parametrize("name", HIER)
    def test_partitioned_parity(self, name):
        spec = get_spec(name, n=3)
        shared = SymbolicFsm(spec.elaborate())
        reach_s = shared.reachable(partitioned=True)
        plain = SymbolicFsm(spec.flat())
        reach_p = plain.reachable(partitioned=True)
        assert shared.count_states(reach_s.reached) == \
            plain.count_states(reach_p.reached)

    def test_too_few_replicas_rejected(self):
        with pytest.raises(ValueError):
            get_spec("philos_hier", n=1)


class TestSharedShapeFuzz:
    def test_sweep_with_replica_check_is_clean(self):
        sweep = run_sweep(20, seed0=0, shared_shapes=True)
        problems = [d for r in sweep.reports for d in r.divergences]
        assert sweep.ok, problems
