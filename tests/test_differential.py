"""The differential fuzz harness: fixed-seed sweep + corpus replay.

The sweep here is the fast in-tree version of ``hsis fuzz``: a batch of
deterministic seeds cross-checking the symbolic engines against the
explicit oracle.  Every repro ever recorded under ``tests/corpus/``
must replay clean — each file pins a divergence that was found by
fuzzing and then fixed.
"""

import json
from pathlib import Path

from repro.oracle import run_sweep, run_trial
from repro.oracle.diff import (
    _case_rng,
    case_to_payload,
    replay_corpus_dir,
    shrink_case,
)
from repro.oracle.fuzz import gen_case
from repro.perf import EngineStats

CORPUS = Path(__file__).parent / "corpus"


class TestSweep:
    def test_fixed_seed_sweep_is_clean(self):
        sweep = run_sweep(25, seed0=0)
        assert sweep.ok, sweep.summary()
        assert len(sweep.reports) == 25
        assert sweep.seconds > 0
        assert not sweep.corpus_written

    def test_trials_are_deterministic(self):
        first = run_trial(5, keep_case=True)
        second = run_trial(5, keep_case=True)
        assert first.ok and second.ok
        assert case_to_payload(first.case) == case_to_payload(second.case)

    def test_trial_populates_stats(self):
        stats = EngineStats()
        report = run_trial(3, stats=stats)
        assert report.ok
        for phase in ("fuzz.bddops", "fuzz.gen", "fuzz.oracle",
                      "fuzz.reach", "fuzz.mc", "fuzz.lc"):
            assert stats.phase_seconds(phase) >= 0
            assert stats.phases[phase].calls == 1
        # Per-trial engine collectors are merged into the sweep stats.
        assert stats.phases["encode"].calls == 2  # reach fsm + lc fsm
        assert "build_tr" in stats.phases


class TestCorpus:
    def test_corpus_is_not_empty(self):
        assert list(CORPUS.glob("*.json")), "expected checked-in repros"

    def test_corpus_replays_clean(self):
        results = replay_corpus_dir(CORPUS)
        for name, divergences in results.items():
            assert not divergences, f"{name}: {[str(d) for d in divergences]}"

    def test_corpus_entries_are_well_formed(self):
        for path in CORPUS.glob("*.json"):
            entry = json.loads(path.read_text())
            assert entry["kind"] in ("bddops", "case")
            assert isinstance(entry["seed"], int)
            assert entry["areas"]
            assert entry["note"]
            if entry["kind"] == "case":
                payload = entry["payload"]
                assert payload["model"].startswith(".model")
                assert "invariant" in payload


class TestShrinking:
    def test_shrink_output_still_valid_and_smaller(self):
        case = gen_case(_case_rng(2))
        shrunk = shrink_case(case, lambda c: True)
        # An always-failing predicate lets every mutation through, so the
        # result is the fixpoint of the shrinkers: no fairness left and a
        # payload no bigger than the original.
        assert shrunk["fairness"] == []
        original = json.dumps(case_to_payload(case))
        reduced = json.dumps(case_to_payload(shrunk))
        assert len(reduced) <= len(original)

    def test_shrink_respects_predicate(self):
        case = gen_case(_case_rng(2))
        keep = lambda c: len(c["fairness"]) == len(case["fairness"])
        shrunk = shrink_case(case, keep)
        assert len(shrunk["fairness"]) == len(case["fairness"])
