"""Regression battery for the flat numpy node store (PR 6).

Four families of pins:

* **Deep-chain regressions** — every formerly-recursive helper
  (`_rename`, `_vcompose`, `_restrict`, `_constrain`, `_restrict_dc`,
  `sat_count`, `sat_iter`, `ops.transfer`) must survive a 2000-variable
  chain *under a tightened interpreter recursion limit*, proving the
  explicit-stack conversions and the removal of the old
  ``sys.setrecursionlimit`` escape hatch.
* **compose parity** — ``compose`` is routed through ``vector_compose``;
  both must land on the same handle and allocate the same node count.
* **Cache fault injection** — a one-slot computed cache forces an
  eviction on essentially every insert; in-flight operators must stay
  correct versus the truth-table oracle (an eviction must never
  invalidate indices an explicit stack still holds).
* **Open-addressing table** — collision-heavy same-variable patterns,
  growth/rehash under live references, and compaction with complement
  edges, all cross-checked against the oracle.
"""

import pickle
import random
import sys
from contextlib import contextmanager

import numpy as np
import pytest

from repro.bdd import BDD
from repro.bdd.manager import BddError
from repro.bdd.ops import transfer
from repro.oracle.truthtable import TruthTable

DEEP = 2000


def _stack_depth() -> int:
    depth, frame = 0, sys._getframe()
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


@contextmanager
def tight_recursion(headroom: int = 160):
    """Clamp the recursion limit just above the current stack depth.

    Any helper that still recursed per BDD level would blow up on the
    2000-node chains below; explicit-stack code sails through.  Also
    asserts nothing inside mutated the limit (the old ``_ensure_depth``
    escape hatch did exactly that, leaking across managers/threads).
    """
    old = sys.getrecursionlimit()
    clamped = _stack_depth() + headroom
    sys.setrecursionlimit(clamped)
    try:
        yield
        assert sys.getrecursionlimit() == clamped, (
            "a kernel helper mutated the global recursion limit"
        )
    finally:
        sys.setrecursionlimit(old)


def deep_manager() -> BDD:
    bdd = BDD()
    for i in range(DEEP):
        bdd.add_var(f"a{i}")
    for i in range(DEEP):
        bdd.add_var(f"b{i}")
    return bdd


def deep_chain(bdd: BDD) -> int:
    """Positive cube over a0..a1999 — a 2000-node linear DAG."""
    return bdd.cube([f"a{i}" for i in range(DEEP)])


# ---------------------------------------------------------------------------
# Deep-chain regressions: one per converted helper
# ---------------------------------------------------------------------------


def test_deep_rename():
    bdd = deep_manager()
    f = deep_chain(bdd)
    mapping = {i: DEEP + i for i in range(DEEP)}  # a_i -> b_i, order-preserving
    with tight_recursion():
        g = bdd.rename(f, mapping)
    assert g == bdd.cube(range(DEEP, 2 * DEEP))


def test_deep_vector_compose():
    bdd = deep_manager()
    f = deep_chain(bdd)
    sub = {i: bdd.var(DEEP + i) for i in range(DEEP)}
    with tight_recursion():
        g = bdd.vector_compose(f, sub)
        # Complemented root exercises the negation normalization path.
        h = bdd.vector_compose(bdd.not_(f), sub)
    assert g == bdd.cube(range(DEEP, 2 * DEEP))
    assert h == bdd.not_(g)


def test_deep_compose():
    bdd = deep_manager()
    f = deep_chain(bdd)
    with tight_recursion():
        g = bdd.compose(f, DEEP - 1, bdd.var(DEEP))  # a1999 := b0
    assert g == bdd.cube(list(range(DEEP - 1)) + [DEEP])


def test_deep_restrict():
    bdd = deep_manager()
    f = deep_chain(bdd)
    with tight_recursion():
        g = bdd.restrict(f, {DEEP - 1: True})   # bottom literal: full walk
        z = bdd.restrict(f, {1000: False})
    assert g == bdd.cube(range(DEEP - 1))
    assert z == bdd.false


def test_deep_constrain():
    bdd = deep_manager()
    f = deep_chain(bdd)
    with tight_recursion():
        g = bdd.constrain(f, bdd.var(DEEP - 1))
    # Constraining by a literal cube is exactly the cofactor.
    assert g == bdd.cube(range(DEEP - 1))


def test_deep_restrict_dc():
    bdd = deep_manager()
    f = deep_chain(bdd)
    care = bdd.cube(range(0, DEEP, 2))  # even a's as the care set
    with tight_recursion():
        r = bdd.restrict_dc(f, care)
    # Defining property of don't-care minimization: agree on the care set.
    assert bdd.and_(r, care) == bdd.and_(f, care)


def test_deep_sat_count():
    bdd = deep_manager()
    f = deep_chain(bdd)
    with tight_recursion():
        # Support is the 2000 a's; the 2000 b's are free.
        assert bdd.sat_count(f) == 1 << DEEP
        assert bdd.sat_count(f, range(DEEP)) == 1


def test_deep_sat_iter():
    bdd = deep_manager()
    f = deep_chain(bdd)
    with tight_recursion():
        models = list(bdd.sat_iter(f, range(DEEP)))
    assert len(models) == 1
    assert all(models[0][v] for v in range(DEEP))
    assert set(models[0]) == set(range(DEEP))


def test_deep_transfer():
    src = deep_manager()
    f = deep_chain(src)
    dst = BDD()
    for i in range(DEEP):
        dst.add_var(f"c{i}")
    with tight_recursion():
        g = transfer(f, src, dst, {i: i for i in range(DEEP)})
        gneg = transfer(src.not_(f), src, dst, {i: i for i in range(DEEP)})
    assert g == dst.cube(range(DEEP))
    assert gneg == dst.not_(g)


def test_no_recursion_limit_escape_hatch_in_kernel_source():
    import inspect

    import repro.bdd.manager as manager
    import repro.bdd.ops as ops
    import repro.bdd.ordering as ordering

    for mod in (manager, ops, ordering):
        src = inspect.getsource(mod)
        assert "setrecursionlimit" not in src, mod.__name__
        assert "_ensure_depth" not in src, mod.__name__


# ---------------------------------------------------------------------------
# compose == vector_compose (satellite 2)
# ---------------------------------------------------------------------------


def _medium(bdd: BDD):
    for i in range(8):
        bdd.add_var(f"x{i}")
    v = [bdd.var(i) for i in range(8)]
    f = bdd.ite(
        v[2],
        bdd.xor(bdd.and_(v[0], v[3]), bdd.or_(v[5], bdd.and_(v[1], bdd.not_(v[6])))),
        bdd.xor(v[4], v[7]),
    )
    g = bdd.or_(bdd.and_(v[4], v[6]), bdd.xor(v[0], v[5]))
    return f, g


def test_compose_matches_vector_compose_handle_and_expansion():
    bdd = BDD()
    f, g = _medium(bdd)
    r1 = bdd.compose(f, 3, g)
    r2 = bdd.vector_compose(f, {3: g})
    assert r1 == r2
    # ...and both equal the textbook restrict/ite expansion (canonicity).
    expansion = bdd.ite(
        g, bdd.restrict(f, {3: True}), bdd.restrict(f, {3: False})
    )
    assert r1 == expansion


def test_compose_node_count_parity_with_vector_compose():
    a = BDD()
    fa, ga = _medium(a)
    a.compose(fa, 3, ga)
    b = BDD()
    fb, gb = _medium(b)
    b.vector_compose(fb, {3: gb})
    assert a.stats()["allocated_nodes"] == b.stats()["allocated_nodes"]


# ---------------------------------------------------------------------------
# Cache fault injection: evict on (essentially) every insert (satellite 3)
# ---------------------------------------------------------------------------


def test_one_slot_cache_thrash_stays_correct():
    """cache_limit=1 degenerates the computed cache to a single slot, so
    nearly every ``_ck_put`` evicts the previous entry — including inserts
    made *mid-operator* while an explicit stack still holds node indices.
    Evictions must never invalidate those indices; every intermediate
    result is checked against the exhaustive oracle."""
    n = 6
    rng = random.Random(0xBDD)
    bdd = BDD(cache_limit=1)
    names = [f"v{i}" for i in range(n)]
    for nm in names:
        bdd.add_var(nm)
    pool = [(bdd.var(i), TruthTable.var(n, i)) for i in range(n)]

    def check(f, t):
        for a in range(1 << n):
            env = {names[j]: bool((a >> j) & 1) for j in range(n)}
            assert bdd.eval(f, env) == t.eval(a), (a, env)

    for step in range(120):
        op = rng.choice(["and", "or", "xor", "not", "ite", "exist", "compose"])
        f, tf = rng.choice(pool)
        g, tg = rng.choice(pool)
        h, th = rng.choice(pool)
        if op == "and":
            r, tr = bdd.and_(f, g), tf & tg
        elif op == "or":
            r, tr = bdd.or_(f, g), tf | tg
        elif op == "xor":
            r, tr = bdd.xor(f, g), tf ^ tg
        elif op == "not":
            r, tr = bdd.not_(f), ~tf
        elif op == "ite":
            r, tr = bdd.ite(f, g, h), tf.ite(tg, th)
        elif op == "exist":
            j = rng.randrange(n)
            r, tr = bdd.exist([j], f), tf.exist([j])
        else:
            j = rng.randrange(n)
            r, tr = bdd.compose(f, j, g), tf.compose(j, tg)
        check(r, tr)
        pool.append((r, tr))

    st = bdd.stats()
    assert st["cache_capacity"] == 1
    assert st["cache_evictions"] > 50, "thrash harness never forced evictions"
    assert bdd.cache_size() <= 1


def test_cache_growth_under_inflight_operator():
    """The growable default cache reallocates its arrays mid-operator;
    handles held by the operator's stack must survive (indices are into
    the *node* columns, never the cache)."""
    bdd = BDD()  # growable cache, starts at 4096 entries
    for i in range(14):
        bdd.add_var(f"g{i}")
    f = bdd.true
    rng = random.Random(7)
    for _ in range(900):
        i, j = rng.randrange(14), rng.randrange(14)
        f = bdd.xor(f, bdd.and_(bdd.var(i), bdd.nvar(j)))
    st = bdd.stats()
    assert st["cache_capacity"] > 4096, "workload never grew the cache"
    # Spot-check correctness after many in-flight growth events.
    rows = np.array([[bool((a >> j) & 1) for j in range(14)] for a in range(0, 1 << 14, 97)])
    got = bdd.eval_batch(f, rows)
    for row, expect in zip(rows, got):
        env = {f"g{j}": bool(row[j]) for j in range(14)}
        assert bdd.eval(f, env) == bool(expect)


# ---------------------------------------------------------------------------
# Open-addressing unique table (satellite 4)
# ---------------------------------------------------------------------------


def test_collision_heavy_same_var_patterns_rehash_and_stay_canonical():
    """4096 minterm cubes over 12 vars put 4096 nodes on the *same*
    top variable with near-sequential child handles — the adversarial
    pattern for multiplicative hashing with linear probing — and force
    several table rehashes (initial size is 2048 slots)."""
    n = 12
    bdd = BDD()
    for i in range(n):
        bdd.add_var(f"m{i}")
    initial_slots = bdd.stats()["unique_slots"]

    def minterm(k: int) -> int:
        lits = [bdd.var(j) if (k >> j) & 1 else bdd.nvar(j) for j in range(n)]
        return bdd.conj(lits)

    handles = [minterm(k) for k in range(1 << n)]
    st = bdd.stats()
    assert st["unique_slots"] > initial_slots, "table never rehashed"
    # Every internal node is findable: used counter == live internal nodes
    # (``len`` counts the shared terminal as two, one per polarity).
    assert st["unique_used"] == len(bdd) - 2
    # Canonicity through all that probing: rebuilding returns identical
    # handles and allocates nothing new.
    allocated = st["allocated_nodes"]
    for k in range(0, 1 << n, 61):
        assert minterm(k) == handles[k]
    assert bdd.stats()["allocated_nodes"] == allocated
    # Distinctness: minterms are pairwise distinct functions.
    assert len(set(handles)) == 1 << n
    # Semantics of a sample against the oracle.
    for k in (0, 1, 1717, 4095):
        t = TruthTable(n, 1 << k)
        for a in (0, k, 4095, 2048):
            env = {f"m{j}": bool((a >> j) & 1) for j in range(n)}
            assert bdd.eval(handles[k], env) == t.eval(a)


def test_growth_and_rehash_under_live_references():
    """Handles taken *before* node-array growth and table rehash must stay
    valid and keep their function afterwards (indices are stable until an
    explicit compaction)."""
    n = 10
    bdd = BDD()
    for i in range(n):
        bdd.add_var(f"r{i}")
    early = []
    tables = []
    for j in range(n - 1):
        f = bdd.xor(bdd.var(j), bdd.and_(bdd.var(j + 1), bdd.nvar(0)))
        early.append(f)
        tables.append(
            TruthTable.var(n, j) ^ (TruthTable.var(n, j + 1) & ~TruthTable.var(n, 0))
        )
    cap_before = bdd.stats()["node_capacity"]
    # Blow past the initial 1024-slot node capacity (and the unique table).
    for k in range(1 << n):
        bdd.conj([bdd.var(j) if (k >> j) & 1 else bdd.nvar(j) for j in range(n)])
    st = bdd.stats()
    assert st["node_capacity"] > cap_before, "workload never grew the arrays"
    for f, t in zip(early, tables):
        for a in (0, 1, 513, 1023):
            env = {f"r{j}": bool((a >> j) & 1) for j in range(n)}
            assert bdd.eval(f, env) == t.eval(a)
    # Rebuilding an early function still lands on the exact same handle.
    rebuilt = bdd.xor(bdd.var(0), bdd.and_(bdd.var(1), bdd.nvar(0)))
    assert rebuilt == early[0]


def test_compaction_with_complement_edges_against_oracle():
    n = 8
    bdd = BDD()
    for i in range(n):
        bdd.add_var(f"c{i}")
    v = [bdd.var(i) for i in range(n)]
    # XOR-heavy functions guarantee complemented edges in the stored DAG.
    f = bdd.xor(bdd.xor(v[0], v[3]), bdd.and_(v[5], bdd.xor(v[1], v[7])))
    g = bdd.not_(bdd.or_(bdd.xor(v[2], v[4]), bdd.and_(v[6], f)))
    tf = (
        TruthTable.var(n, 0)
        ^ TruthTable.var(n, 3)
        ^ (TruthTable.var(n, 5) & (TruthTable.var(n, 1) ^ TruthTable.var(n, 7)))
    )
    tg = ~((TruthTable.var(n, 2) ^ TruthTable.var(n, 4)) | (TruthTable.var(n, 6) & tf))
    bdd.register_root("f", f)
    # Junk that dies at the safe point:
    for i in range(n - 1):
        bdd.and_(bdd.xor(v[i], v[i + 1]), g)
    assert bdd.stats()["complement_edges"] > 0
    live_before = len(bdd)

    [g2] = bdd.compact(extra_roots=[g])
    f2 = bdd._roots["f"]

    st = bdd.stats()
    assert st["compact_runs"] == 1
    # Compaction is dense: no free slots, allocation == live.
    assert st["allocated_nodes"] == len(bdd)
    assert len(bdd) <= live_before
    assert st["unique_used"] == len(bdd) - 2
    # Remapped handles carry the exact same functions (oracle over all 256).
    for a in range(1 << n):
        env = {f"c{j}": bool((a >> j) & 1) for j in range(n)}
        assert bdd.eval(f2, env) == tf.eval(a), a
        assert bdd.eval(g2, env) == tg.eval(a), a
    # Canonicity after the remap: rebuilding lands on the remapped handles.
    # (Old literal handles are invalid after compaction — re-fetch them.)
    w = [bdd.var(i) for i in range(n)]
    f3 = bdd.xor(bdd.xor(w[0], w[3]), bdd.and_(w[5], bdd.xor(w[1], w[7])))
    assert f3 == f2
    # Stored-then-regular invariant still holds over the compacted columns.
    for idx in range(1, bdd.stats()["allocated_nodes"] - 1):
        if bdd._var[idx] < 0:
            continue
        assert bdd._hi[idx] & 1 == 0


def test_unique_table_healthy_after_sifting_tombstones():
    """Sifting deletes and reinserts relabeled nodes, leaving tombstones;
    the table must stay canonical and its live counter exact."""
    bdd = BDD()
    for i in range(8):
        bdd.add_var(f"s{i}")
    v = [bdd.var(i) for i in range(8)]
    f = bdd.or_(bdd.and_(v[0], v[4]), bdd.or_(bdd.and_(v[1], v[5]), bdd.and_(v[2], v[6])))
    bdd.register_root("f", f)
    bdd.reorder_now()
    st = bdd.stats()
    assert st["unique_used"] == len(bdd) - 2
    # Find-or-create still lands on existing nodes through any tombstones.
    # Only the registered root survived the reorder's sweep — re-fetch the
    # literals and rebuild; canonicity must land back on ``f``.
    w = [bdd.var(i) for i in range(8)]
    rebuilt = bdd.or_(
        bdd.and_(w[0], w[4]), bdd.or_(bdd.and_(w[1], w[5]), bdd.and_(w[2], w[6]))
    )
    assert rebuilt == f


# ---------------------------------------------------------------------------
# Vectorized evaluation + pickling plumbing
# ---------------------------------------------------------------------------


def test_eval_batch_matches_scalar_eval():
    n = 10
    bdd = BDD()
    for i in range(n):
        bdd.add_var(f"e{i}")
    rng = random.Random(99)
    f = bdd.false
    for _ in range(60):
        i, j, k = (rng.randrange(n) for _ in range(3))
        f = bdd.ite(bdd.var(i), bdd.xor(f, bdd.var(j)), bdd.or_(f, bdd.nvar(k)))
    rows = np.array(
        [[bool((a >> j) & 1) for j in range(n)] for a in range(1 << n)], dtype=bool
    )
    got = bdd.eval_batch(f, rows)
    assert got.dtype == bool and got.shape == (1 << n,)
    for a in range(0, 1 << n, 17):
        env = {f"e{j}": bool((a >> j) & 1) for j in range(n)}
        assert bool(got[a]) == bdd.eval(f, env)
    # Named-column variant and terminal fast paths.
    sub = bdd.eval_batch(f, rows, variables=[f"e{j}" for j in range(n)])
    assert np.array_equal(sub, got)
    assert bdd.eval_batch(bdd.true, rows).all()
    assert not bdd.eval_batch(bdd.false, rows).any()
    with pytest.raises(BddError):
        bdd.eval_batch(f, rows[:, :3])


def test_manager_pickles_and_restores_views():
    bdd = BDD()
    for i in range(6):
        bdd.add_var(f"p{i}")
    f = bdd.xor(bdd.var(0), bdd.and_(bdd.var(3), bdd.nvar(5)))
    bdd.register_root("f", f)
    clone = pickle.loads(pickle.dumps(bdd))
    g = clone._roots["f"]
    for a in range(1 << 6):
        env = {f"p{j}": bool((a >> j) & 1) for j in range(6)}
        assert clone.eval(g, env) == bdd.eval(f, env)
    # The restored manager must be fully operational (views rebuilt).
    assert clone.and_(g, clone.var(1)) == clone.and_(clone.var(1), g)
