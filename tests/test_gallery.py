"""The design gallery: the paper's 'dozen or so' examples, all verified."""

import pytest

from repro.ctl import ModelChecker
from repro.lc import check_containment
from repro.models import GALLERY, TABLE1, get_spec
from repro.network import SymbolicFsm


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_gallery_design_verifies(name):
    spec = GALLERY[name]()
    fsm = SymbolicFsm(spec.flat())
    fsm.build_transition()
    reach = fsm.reachable()
    assert reach.converged
    checker = ModelChecker(fsm, fairness=spec.pif.bind_fairness(fsm),
                           reached=reach.reached)
    for pname, formula in spec.pif.ctl_props:
        assert checker.check(formula).holds, f"{name}: ctl {pname}"
    for automaton in spec.pif.automata:
        fresh = SymbolicFsm(spec.flat())
        result = check_containment(
            fresh, automaton, system_fairness=spec.pif.bind_fairness(fresh))
        assert result.holds, f"{name}: lc {automaton.name}"


def test_a_dozen_examples():
    """Paper §8: 'We have exercised HSIS with a dozen or so small to
    medium-sized examples.'"""
    assert len(TABLE1) + len(GALLERY) == 12


def test_gallery_reachable_by_name():
    spec = get_spec("traffic")
    assert spec.name == "traffic"


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_gallery_designs_are_nontrivial(name):
    spec = GALLERY[name]()
    fsm = SymbolicFsm(spec.flat())
    fsm.build_transition()
    count = fsm.count_states(fsm.reachable().reached)
    assert count >= 4, f"{name} has only {count} states"
    assert len(spec.pif.ctl_props) + len(spec.pif.automata) >= 3


class TestRailroadSafety:
    def test_bridge_mutex_is_tight(self):
        # both trains *waiting* simultaneously is reachable (the lock is
        # needed) but both on the bridge is not
        spec = GALLERY["railroad"]()
        fsm = SymbolicFsm(spec.flat())
        fsm.build_transition()
        reached = fsm.reachable().reached
        both_waiting = fsm.state_cube({"east": "waiting", "west": "waiting"})
        both_bridge = fsm.state_cube({"east": "bridge", "west": "bridge"})
        assert fsm.bdd.and_(reached, both_waiting) != fsm.bdd.false
        assert fsm.bdd.and_(reached, both_bridge) == fsm.bdd.false


class TestGcdTermination:
    def test_gcd_value_plausible(self):
        # when done with a==b, that value divides both original operands —
        # spot check: a=6,b=4 leads to done with a==2 reachable
        spec = GALLERY["gcd"]()
        fsm = SymbolicFsm(spec.flat())
        fsm.build_transition()
        reached = fsm.reachable().reached
        done2 = fsm.state_cube({"phase": "done", "a": "2", "b": "2"})
        assert fsm.bdd.and_(reached, done2) != fsm.bdd.false
