"""benchmarks/compare.py: tolerance gating and regression detection."""

import copy
import importlib.util
import json
import os
import sys

_COMPARE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "compare.py",
)
_spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE_PATH)
compare = importlib.util.module_from_spec(_spec)
sys.modules["bench_compare"] = compare  # dataclasses resolve via sys.modules
_spec.loader.exec_module(compare)


BASELINE = {
    "table1": {
        "philos": {
            "read_s": 0.2,
            "states": 28,
            "peak_nodes": 9685,
            "paper_states": 18,
        },
        "gigamax": {"read_s": 1.0, "states": 1024},
    },
    "fuzz_harness": {
        "sweep/40": {"seconds": 10.0, "trials_per_s": 4.0},
    },
}


def test_identical_payloads_pass():
    result = compare.compare_results(BASELINE, copy.deepcopy(BASELINE))
    assert not result.failed
    assert result.findings == []
    assert result.cells > 0


def test_timing_within_tolerance_passes():
    current = copy.deepcopy(BASELINE)
    current["table1"]["philos"]["read_s"] = 0.2 * 1.2  # +20% < 25%
    result = compare.compare_results(BASELINE, current, tolerance=0.25)
    assert not result.failed


def test_timing_regression_flagged():
    current = copy.deepcopy(BASELINE)
    current["table1"]["philos"]["read_s"] = 0.2 * 1.6  # +60% > 25%
    result = compare.compare_results(BASELINE, current, tolerance=0.25)
    assert result.failed
    (finding,) = [f for f in result.findings if f.fatal]
    assert finding.kind == "regression"
    assert finding.column == "read_s"


def test_timing_improvement_is_informational():
    current = copy.deepcopy(BASELINE)
    current["table1"]["philos"]["read_s"] = 0.05
    result = compare.compare_results(BASELINE, current)
    assert not result.failed
    assert any(f.kind == "improvement" for f in result.findings)


def test_rate_column_gated_in_opposite_direction():
    slower = copy.deepcopy(BASELINE)
    slower["fuzz_harness"]["sweep/40"]["trials_per_s"] = 1.0  # throughput drop
    assert compare.compare_results(BASELINE, slower).failed
    faster = copy.deepcopy(BASELINE)
    faster["fuzz_harness"]["sweep/40"]["trials_per_s"] = 8.0
    assert not compare.compare_results(BASELINE, faster).failed


def test_counter_drift_fails_by_default_but_not_lax():
    current = copy.deepcopy(BASELINE)
    current["table1"]["philos"]["states"] = 29
    assert compare.compare_results(BASELINE, current).failed
    lax = compare.compare_results(BASELINE, current, lax_counters=True)
    assert not lax.failed
    assert any(f.kind == "drift" for f in lax.findings)


def test_node_columns_tolerance_gated_lower_is_better():
    # Small wobble within tolerance: not even reported.
    current = copy.deepcopy(BASELINE)
    current["table1"]["philos"]["peak_nodes"] = 9999  # +3% < 25%
    result = compare.compare_results(BASELINE, current)
    assert not result.failed
    assert result.findings == []
    # A blow-up past tolerance is fatal — even under --lax-counters.
    current["table1"]["philos"]["peak_nodes"] = 9685 * 2
    for lax in (False, True):
        result = compare.compare_results(BASELINE, current, lax_counters=lax)
        assert result.failed
        (finding,) = [f for f in result.findings if f.fatal]
        assert finding.kind == "regression" and finding.column == "peak_nodes"
    # A big reduction is an informational improvement.
    current["table1"]["philos"]["peak_nodes"] = 5000
    result = compare.compare_results(BASELINE, current)
    assert not result.failed
    assert any(f.kind == "improvement" for f in result.findings)


def test_paper_columns_ignored():
    current = copy.deepcopy(BASELINE)
    current["table1"]["philos"]["paper_states"] = 99999
    assert not compare.compare_results(BASELINE, current).failed


def test_missing_case_and_experiment_fail():
    current = copy.deepcopy(BASELINE)
    del current["table1"]["gigamax"]
    assert compare.compare_results(BASELINE, current).failed
    current = copy.deepcopy(BASELINE)
    del current["fuzz_harness"]
    assert compare.compare_results(BASELINE, current).failed


def test_new_case_is_informational():
    current = copy.deepcopy(BASELINE)
    current["table1"]["extra"] = {"states": 1}
    result = compare.compare_results(BASELINE, current)
    assert not result.failed
    assert any(f.kind == "new" for f in result.findings)


def test_per_experiment_tolerance_override():
    current = copy.deepcopy(BASELINE)
    current["table1"]["philos"]["read_s"] = 0.2 * 1.6
    tight = compare.compare_results(BASELINE, current, tolerance=0.25)
    assert tight.failed
    loose = compare.compare_results(
        BASELINE, current, tolerance=0.25, per_experiment={"table1": 1.0}
    )
    assert not loose.failed


def test_cli_exit_codes(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    cur_path = tmp_path / "cur.json"
    base_path.write_text(json.dumps(BASELINE))
    cur_path.write_text(json.dumps(BASELINE))
    assert compare.main([str(base_path), str(cur_path)]) == 0
    regressed = copy.deepcopy(BASELINE)
    regressed["table1"]["philos"]["read_s"] = 99.0
    cur_path.write_text(json.dumps(regressed))
    assert compare.main([str(base_path), str(cur_path)]) == 1
    out = capsys.readouterr().out
    assert "regression" in out
    assert compare.main([str(base_path), str(tmp_path / "missing.json")]) == 2
