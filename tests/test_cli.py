"""Tests for the hsis shell (programmatic command execution)."""

import pytest

from repro.cli import CliError, HsisShell

VERILOG = """
module toggle;
  reg s; initial s = 0;
  wire go;
  assign go = $ND(0, 1);
  always @(posedge clk) s <= go ? !s : s;
  wire out;
  assign out = s;
endmodule
"""

BLIFMV = """
.model counter
.mv s,n 3
.table s -> n
0 1
1 2
2 0
.latch n s
.reset s
0
.end
"""

PIF = """
ctl can_reach_two :: EF s=2
ctl never_stuck :: AG EX TRUE

automaton lc_no_three
  states A
  initial A
  edge A A
  accept invariance A
end
"""


@pytest.fixture
def files(tmp_path):
    v = tmp_path / "toggle.v"
    v.write_text(VERILOG)
    b = tmp_path / "counter.mv"
    b.write_text(BLIFMV)
    p = tmp_path / "props.pif"
    p.write_text(PIF)
    return {"verilog": str(v), "blifmv": str(b), "pif": str(p),
            "tmp": tmp_path}


class TestLoading:
    def test_read_blif_mv(self, files):
        shell = HsisShell()
        out = shell.execute(f"read_blif_mv {files['blifmv']}")
        assert "1 latches" in out

    def test_read_verilog(self, files):
        shell = HsisShell()
        out = shell.execute(f"read_verilog {files['verilog']}")
        assert "latches" in out

    def test_read_pif(self, files):
        shell = HsisShell()
        out = shell.execute(f"read_pif {files['pif']}")
        assert "2 CTL properties" in out
        assert "1 automata" in out

    def test_write_blif_mv(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        target = files["tmp"] / "out.mv"
        shell.execute(f"write_blif_mv {target}")
        assert target.exists()
        assert ".model" in target.read_text()

    def test_unknown_command(self):
        with pytest.raises(CliError):
            HsisShell().execute("frobnicate")

    def test_empty_line(self):
        assert HsisShell().execute("") == ""
        assert HsisShell().execute("# comment only") == ""


class TestVerificationFlow:
    def test_full_flow(self, files):
        shell = HsisShell()
        outputs = shell.run_script([
            f"read_blif_mv {files['blifmv']}",
            f"read_pif {files['pif']}",
            "build_tr greedy",
            "comp_reach",
            "print_stats",
            "mc",
            "lc",
        ])
        assert "reached 3 states" in outputs
        assert "mc can_reach_two: passed" in outputs
        assert "mc never_stuck: passed" in outputs
        assert "lc lc_no_three: passed" in outputs

    def test_inline_mc_formula(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        out = shell.execute("mc EF s=1")
        assert "passed" in out

    def test_mc_without_properties(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        with pytest.raises(CliError):
            shell.execute("mc")

    def test_lc_without_pif(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        with pytest.raises(CliError):
            shell.execute("lc")

    def test_commands_need_design(self):
        shell = HsisShell()
        for command in ("build_tr", "comp_reach", "print_stats", "mc EF x=1"):
            with pytest.raises(CliError):
                shell.execute(command)

    def test_build_tr_methods(self, files):
        for method in ("greedy", "linear", "monolithic"):
            shell = HsisShell()
            shell.execute(f"read_blif_mv {files['blifmv']}")
            out = shell.execute(f"build_tr {method}")
            assert "transition relation" in out

    def test_failing_mc_reports(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        out = shell.execute("mc AG s=0")
        assert "FAILED" in out

    def test_debug_mc(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        out = shell.execute("debug_mc AG s=0")
        assert "FAILS" in out

    def test_debug_mc_by_pif_name(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        shell.execute(f"read_pif {files['pif']}")
        out = shell.execute("debug_mc can_reach_two")
        assert "holds" in out


class TestSimulation:
    def test_sim_flow(self, files):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {files['blifmv']}")
        out = shell.execute("sim_init")
        assert "s=0" in out
        out = shell.execute("sim_step")
        assert "s=1" in out
        out = shell.execute("sim_random 4")
        assert "visited" in out

    def test_sim_step_choice(self, files):
        shell = HsisShell()
        shell.execute(f"read_verilog {files['verilog']}")
        shell.execute("sim_init")
        out = shell.execute("sim_step 0")
        assert "->" in out


class TestHelp:
    def test_help_lists_commands(self):
        out = HsisShell().execute("help")
        for name in ("read_blif_mv", "comp_reach", "mc", "lc"):
            assert name in out


NEW_DESIGN = """
.model two
.mv c,cn 4
.table c -> cn
0 1
1 2
2 3
3 0
.latch cn c
.reset c
0
.mv s,sn 4
.table s -> sn
- =s
.latch sn s
.reset s
0
.end
"""

SPEC_DESIGN = """
.model spec
.mv c,cn 4
.table c -> cn
- (0,1,2,3)
.latch cn c
.reset c
0
.end
"""


@pytest.fixture
def two_part(tmp_path):
    design = tmp_path / "two.mv"
    design.write_text(NEW_DESIGN)
    spec = tmp_path / "spec.mv"
    spec.write_text(SPEC_DESIGN)
    return {"design": str(design), "spec": str(spec), "tmp": tmp_path}


class TestAbstractionCommands:
    def test_coi(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        out = shell.execute("coi c")
        assert "dropped 1 latches" in out
        assert "reached 4 states" in shell.execute("comp_reach")

    def test_coi_needs_args(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        with pytest.raises(CliError):
            shell.execute("coi")

    def test_delay(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        out = shell.execute("delay c 1 2")
        assert "delayed by [1, 2]" in out
        # the timed machine still reaches a fixpoint
        assert "reached" in shell.execute("comp_reach")

    def test_bisim(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        shell.execute("comp_reach")
        out = shell.execute("bisim c=0")
        assert "classes" in out

    def test_refine(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        out = shell.execute(f"refine {two_part['spec']} c")
        assert "HOLDS" in out

    def test_write_dot(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        target = two_part["tmp"] / "g.dot"
        out = shell.execute(f"write_dot {target}")
        assert "wrote" in out
        assert "digraph" in target.read_text()


class TestInteractiveDebugger:
    def test_scripted_session(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        feeds = iter(["0", "u", "q"])
        shell.input_fn = lambda prompt: next(feeds)
        out = shell.execute("debug_mc_interactive AG !(c=3)")
        assert "FAILS" in out
        assert "[0]" in out

    def test_bad_choice_reported(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        feeds = iter(["99", "q"])
        shell.input_fn = lambda prompt: next(feeds)
        out = shell.execute("debug_mc_interactive AG !(c=3)")
        assert "bad choice" in out

    def test_needs_formula(self, two_part):
        shell = HsisShell()
        shell.execute(f"read_blif_mv {two_part['design']}")
        with pytest.raises(CliError):
            shell.execute("debug_mc_interactive")
