"""Concurrency coverage for the ``hsis serve`` async job server.

Every test boots a real :class:`HsisServer` in-process on an ephemeral
port and drives it with asyncio clients over real sockets.  The pinned
guarantees: many concurrent mixed jobs all complete with the right
answers, duplicate submissions are served from the persistent cache or
coalesced onto the in-flight worker (visible through ``cached`` /
``coalesced`` flags and the server's job counters), and a served
verdict is bit-identical to what the serial engine computes.
"""

import asyncio

from repro.ctl import ModelChecker
from repro.models import GALLERY, get_spec
from repro.network import SymbolicFsm
from repro.serve import HsisServer, ServeClient

#: Hard ceiling on any one test's server interaction; hitting it means
#: the queue stalled, which is exactly what these tests must rule out.
STALL_BUDGET_SECONDS = 120.0


def serve_test(body, tmp_path, **server_kwargs):
    """Boot a server on an ephemeral port, run ``body(server)``, stop."""
    server_kwargs.setdefault("jobs", 4)
    server_kwargs.setdefault("timeout", 60.0)
    server_kwargs.setdefault("cache_dir", str(tmp_path / "cache"))

    async def main():
        server = HsisServer(host="127.0.0.1", port=0, **server_kwargs)
        await server.start()
        try:
            return await asyncio.wait_for(
                body(server), timeout=STALL_BUDGET_SECONDS
            )
        finally:
            await server.stop()

    return asyncio.run(main())


async def submit_one(port, kind, **kwargs):
    """One job on its own connection (clients are sequential per socket)."""
    async with ServeClient(port=port) as client:
        return await client.submit(kind, **kwargs)


def gallery_check_designs():
    """Gallery designs that ship CTL properties (what ``check`` needs)."""
    names = [n for n in sorted(GALLERY) if get_spec(n).pif.ctl_props]
    assert names, "gallery lost its CTL-carrying designs"
    return names


class TestConcurrency:
    def test_sixteen_concurrent_mixed_jobs(self, tmp_path):
        """≥16 distinct check/fuzz/profile jobs in flight at once, all
        completing with ok verdicts and one pool run per job."""
        checks = gallery_check_designs()[:4]
        profiles = ["gcd", "railroad", "traffic"]
        seeds = range(9)

        async def body(server):
            jobs = (
                [
                    submit_one(server.port, "check", design={"gallery": n})
                    for n in checks
                ]
                + [
                    submit_one(server.port, "profile", design={"gallery": n})
                    for n in profiles
                ]
                + [
                    submit_one(
                        server.port, "fuzz", knobs={"trials": 1, "seed": s}
                    )
                    for s in seeds
                ]
            )
            assert len(jobs) >= 16
            results = await asyncio.gather(*jobs)
            return results, dict(server.stats.counters)

        results, counters = serve_test(body, tmp_path)
        assert all(r["ok"] for r in results)
        assert all(r["status"] == "ok" for r in results)
        assert not any(r["cached"] for r in results), "all jobs distinct"
        job_ids = [r["job"] for r in results]
        assert len(set(job_ids)) == len(job_ids), "no spurious dedup"
        # One pool execution per submission: nothing dropped, nothing rerun.
        assert counters["serve.jobs"] == len(results)
        assert counters["serve.jobs.ok"] == len(results)
        assert counters["serve.submitted"] == len(results)
        assert counters.get("serve.coalesced", 0) == 0
        for r in results:
            assert r["attempts"] == 1

    def test_streamed_job_reports_lifecycle_events(self, tmp_path):
        async def body(server):
            events = []
            async with ServeClient(port=server.port) as client:
                result = await client.submit(
                    "check",
                    design={"gallery": "traffic"},
                    stream=True,
                    on_event=events.append,
                )
            return result, events

        result, events = serve_test(body, tmp_path, jobs=1)
        assert result["ok"]
        names = [e["event"]["name"] for e in events]
        assert "serve.job.start" in names
        assert "serve.job.done" in names
        # The worker's own tracer timeline rides along before the result.
        assert len(names) > 2, "no worker events relayed"


class TestDeduplication:
    def test_repeat_submission_is_served_from_cache(self, tmp_path):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                first = await client.submit(
                    "check", design={"gallery": "traffic"}
                )
                second = await client.submit(
                    "check", design={"gallery": "traffic"}
                )
            return first, second, dict(server.stats.counters), \
                server.cache.snapshot()

        first, second, counters, cache = serve_test(body, tmp_path, jobs=2)
        assert first["ok"] and not first["cached"]
        assert second["ok"] and second["cached"]
        assert second["status"] == "ok"
        assert second["seconds"] == 0.0  # served without running anything
        assert second["cold_seconds"] > 0.0
        assert second["attempts"] == 0
        assert second["result"] == first["result"]
        assert second["key"] == first["key"]
        # Exactly one pool execution happened for the two submissions.
        assert counters["serve.jobs"] == 1
        assert counters["serve.cache_hits"] == 1
        assert cache["stores"] == 1 and cache["hits"] == 1

    def test_cache_survives_server_restart(self, tmp_path):
        """The cache is persistent: a fresh server instance over the same
        directory serves yesterday's results without recomputing."""
        cache_dir = str(tmp_path / "cache")

        async def cold(server):
            return await submit_one(
                server.port, "check", design={"gallery": "elevator"}
            )

        async def warm(server):
            result = await submit_one(
                server.port, "check", design={"gallery": "elevator"}
            )
            return result, dict(server.stats.counters)

        first = serve_test(cold, tmp_path, cache_dir=cache_dir)
        second, counters = serve_test(warm, tmp_path, cache_dir=cache_dir)
        assert not first["cached"] and second["cached"]
        assert second["result"] == first["result"]
        assert counters.get("serve.jobs", 0) == 0, "nothing recomputed"

    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        """Six clients racing the same request share one execution."""
        fanout = 6

        async def body(server):
            clients = [ServeClient(port=server.port) for _ in range(fanout)]
            for client in clients:
                await client.connect()
            try:
                acks = []
                for client in clients:
                    acks.append(
                        await client.submit_nowait(
                            "check", design={"gallery": "rrarbiter"}
                        )
                    )
                results = []
                for client, ack in zip(clients, acks):
                    if ack.get("op") == "result":  # lost the race: cache hit
                        results.append(ack)
                    else:
                        results.append(await client.wait_result())
            finally:
                for client in clients:
                    await client.close()
            return acks, results, dict(server.stats.counters)

        acks, results, counters = serve_test(body, tmp_path, jobs=2)
        fresh = [
            a for a in acks
            if a.get("op") == "submitted" and not a["coalesced"]
        ]
        coalesced = [
            a for a in acks if a.get("op") == "submitted" and a["coalesced"]
        ]
        cached = [a for a in acks if a.get("op") == "result"]
        assert len(fresh) == 1, "exactly one submission runs"
        assert len(coalesced) + len(cached) == fanout - 1
        # Coalesced waiters ride the very same job id.
        assert {a["job"] for a in coalesced} <= {fresh[0]["job"]}
        assert counters["serve.jobs"] == 1
        assert counters.get("serve.coalesced", 0) == len(coalesced)
        payloads = [r["result"] for r in results]
        assert all(r["ok"] for r in results)
        assert all(p == payloads[0] for p in payloads)


class TestParity:
    def _serial_verdicts(self, name):
        spec = get_spec(name)
        fsm = SymbolicFsm(spec.flat())
        pif = spec.pif
        checker = ModelChecker(fsm, fairness=pif.bind_fairness(fsm))
        return {
            prop: checker.check(formula).holds
            for prop, formula in pif.ctl_props
        }

    def test_served_verdicts_match_serial_engine(self, tmp_path):
        """served == serial on every CTL-carrying gallery design."""
        designs = gallery_check_designs()

        async def body(server):
            results = await asyncio.gather(
                *[
                    submit_one(server.port, "check", design={"gallery": n})
                    for n in designs
                ]
            )
            return dict(zip(designs, results))

        served = serve_test(body, tmp_path)
        for name in designs:
            result = served[name]
            assert result["ok"], f"{name}: {result['error']}"
            got = {
                v["name"]: v["holds"] for v in result["result"]["verdicts"]
            }
            assert got == self._serial_verdicts(name), name

    def test_status_snapshot_accounts_for_every_job(self, tmp_path):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                await client.submit("fuzz", knobs={"trials": 1, "seed": 0})
                await client.submit("fuzz", knobs={"trials": 1, "seed": 1})
                status = await client.status()
            return status

        status = serve_test(body, tmp_path, jobs=1)
        assert status["ok"]
        assert status["jobs"] == {"done": 2}
        assert status["queue_depth"] == 0
        assert status["inflight"] == 0
        assert status["counters"]["serve.jobs"] == 2
        assert status["cache"]["stores"] == 2
        assert len(status["recent"]) == 2
