"""Property-based tests: bisimulation quotients vs the explicit oracle.

On fuzzer-generated models, the coarsest bisimulation partition must

* actually partition the state space,
* be *stable*: whether a state can step into class ``B`` is constant
  across each class ``A`` (the defining bisimulation property), and
* preserve CTL over the observables: checking a formula on the explicit
  quotient graph gives the same per-state answers as checking it on the
  full explicit state graph.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.ctl import ModelChecker
from repro.lc.faircycle import FairGraph
from repro.minimize import bisimulation_partition, quotient_size, representatives
from repro.network import SymbolicFsm
from repro.oracle import ExplicitKripke, ExplicitModelChecker, state_bits
from repro.oracle.fuzz import gen_model, gen_prop

FORMULAS = [
    "EF p0=1",
    "AG p0=1",
    "EG p1=1",
    "AX p1=1",
    "E[ p1=1 U p0=1 ]",
    "A[ p0=1 U p1=1 ]",
]


def setup(seed):
    rng = random.Random(seed)
    model = gen_model(rng, max_space=256)
    kripke = ExplicitKripke(model)
    fsm = SymbolicFsm(model)
    fsm.build_transition()
    checker = ModelChecker(fsm)
    observables = [
        checker.eval(gen_prop(rng, model, depth=2)) for _ in range(2)
    ]
    partition = bisimulation_partition(fsm, observables)
    return kripke, fsm, observables, partition


def member(fsm, node, state, latch_names):
    return fsm.bdd.eval(node, state_bits(fsm, state, latch_names))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=5_000))
def test_classes_partition_the_state_space(seed):
    kripke, fsm, _, partition = setup(seed)
    bdd = fsm.bdd
    union = bdd.false
    for cls in partition.classes:
        assert cls != bdd.false
        assert bdd.and_(union, cls) == bdd.false  # pairwise disjoint
        union = bdd.or_(union, cls)
    assert union == fsm.state_domain()
    assert quotient_size(partition) == len(partition.classes)
    # One representative per (non-empty) class.
    assert fsm.count_states(representatives(fsm, partition)) == len(
        partition.classes
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=5_000))
def test_partition_is_stable(seed):
    kripke, fsm, _, partition = setup(seed)
    bdd = fsm.bdd
    graph = FairGraph(fsm)
    space = fsm.state_domain()
    for target in partition.classes:
        can_step = bdd.and_(graph.pre(target), space)
        for cls in partition.classes:
            inside = bdd.and_(cls, can_step)
            assert inside in (bdd.false, cls)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=5_000))
def test_quotient_preserves_ctl_over_observables(seed):
    kripke, fsm, observables, partition = setup(seed)
    names = kripke.latch_names

    def class_of(state):
        for i, cls in enumerate(partition.classes):
            if member(fsm, cls, state, names):
                return i
        raise AssertionError(f"state {state!r} in no class")

    cls_index = {s: class_of(s) for s in kripke.states}
    quot_succ = {i: set() for i in range(len(partition.classes))}
    for s in kripke.states:
        for t in kripke.successors[s]:
            quot_succ[cls_index[s]].add(cls_index[t])

    obs_states = [
        {s for s in kripke.states if member(fsm, obs, s, names)}
        for obs in observables
    ]

    def full_atoms(var, values):
        return obs_states[int(var[1:])]

    def quot_atoms(var, values):
        good = obs_states[int(var[1:])]
        return {i for s, i in cls_index.items() if s in good}

    full = ExplicitModelChecker(kripke.states, kripke.successors, full_atoms)
    quot = ExplicitModelChecker(
        range(len(partition.classes)), quot_succ, quot_atoms
    )
    for text in FORMULAS:
        full_sat = full.eval(text)
        quot_sat = quot.eval(text)
        for s in kripke.states:
            assert (s in full_sat) == (cls_index[s] in quot_sat), text
